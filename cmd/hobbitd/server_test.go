package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hobbitscan/hobbit/internal/api"
	"github.com/hobbitscan/hobbit/internal/core"
)

// testWorld is small enough that a full campaign finishes in well under a
// second, so the suite can run dozens of them.
const (
	testBlocks = 120
	testScale  = 0.02
)

func newTestServer(t *testing.T, mut func(*serverConfig)) (*server, *httptest.Server) {
	t.Helper()
	cfg := serverConfig{
		DefaultWorld: api.WorldSpecV1{Blocks: testBlocks, Scale: testScale},
		Now:          time.Now,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func submitBody(seed uint64, mut func(*api.SubmitRequestV1)) *bytes.Reader {
	req := api.SubmitRequestV1{World: api.WorldSpecV1{Seed: seed}}
	if mut != nil {
		mut(&req)
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return bytes.NewReader(b)
}

func decodeJSON[T any](t *testing.T, r io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func postCampaign(t *testing.T, ts *httptest.Server, body io.Reader) (*http.Response, api.SessionV1) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	return resp, decodeJSON[api.SessionV1](t, resp.Body)
}

// waitResult blocks on GET .../result?wait=1 and returns the summary
// bytes once the session is done.
func waitResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: %s: %s", id, resp.Status, b)
	}
	return b
}

func counters(t *testing.T, ts *httptest.Server) map[string]int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap := decodeJSON[struct {
		Counters map[string]int64 `json:"counters"`
	}](t, resp.Body)
	return snap.Counters
}

func errorCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	return decodeJSON[api.ErrorV1](t, resp.Body).Error.Code
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := decodeJSON[map[string]string](t, resp.Body)
	if resp.StatusCode != http.StatusOK || body["api"] != api.Version {
		t.Fatalf("healthz = %s %v", resp.Status, body)
	}
}

// TestSubmitValidation pins the 400 paths: malformed JSON, unknown
// fields (the versioning contract rejects what v1 does not define),
// out-of-range worlds, unknown fault plans, bad options.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, func(c *serverConfig) { c.MaxBlocks = 500 })
	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{`},
		{"unknown field", `{"world": {"blocks": 10}, "shards": 4}`},
		{"unknown world field", `{"world": {"blocks": 10, "universe": 9}}`},
		{"blocks over ceiling", `{"world": {"blocks": 100000}}`},
		{"negative blocks", `{"world": {"blocks": -5}}`},
		{"bad scale", `{"world": {"scale": 40}}`},
		{"negative epoch", `{"world": {"epoch": -1}}`},
		{"unknown fault plan", `{"world": {"fault_plan": "meteor-strike"}}`},
		{"negative timeout", `{"timeout_ms": -4}`},
		{"negative workers", `{"options": {"workers": -1}}`},
		{"bad confidence", `{"options": {"mda": {"confidence": 7}}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", tc.name, resp.Status)
		}
		if code := errorCode(t, resp); code != api.CodeBadRequest {
			t.Errorf("%s: code %q, want %q", tc.name, code, api.CodeBadRequest)
		}
	}
}

func TestNotFound(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, path := range []string{"/v1/campaigns/c-404", "/v1/campaigns/c-404/result", "/v2/campaigns", "/nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %s, want 404", path, resp.Status)
		}
		if code := errorCode(t, resp); code != api.CodeNotFound {
			t.Errorf("%s: code %q, want %q", path, code, api.CodeNotFound)
		}
	}
}

// TestCampaignLifecycle drives one async campaign through every
// endpoint: submit (202, queued), status, blocking result, list, session
// metrics, server metrics.
func TestCampaignLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, sess := postCampaign(t, ts, submitBody(7, nil))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status = %s, want 202", resp.Status)
	}
	if sess.ID == "" || sess.CacheHit {
		t.Fatalf("bad submit session: %+v", sess)
	}
	if sess.World.Blocks != testBlocks || sess.World.Scale != testScale {
		t.Errorf("world defaults not applied: %+v", sess.World)
	}

	// The result endpoint before completion either waits (wait=1, below)
	// or conflicts; the status endpoint always answers.
	result := waitResult(t, ts, sess.ID)
	var summary api.RunSummaryV1
	if err := json.Unmarshal(result, &summary); err != nil {
		t.Fatalf("result is not a RunSummaryV1: %v", err)
	}
	if summary.Universe != testBlocks || summary.Probes == 0 {
		t.Errorf("implausible summary: universe=%d probes=%d", summary.Universe, summary.Probes)
	}

	st, err := http.Get(ts.URL + "/v1/campaigns/" + sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	view := decodeJSON[api.SessionV1](t, st.Body)
	st.Body.Close()
	if view.State != api.StateDone || view.FinishedUnixMS == 0 {
		t.Errorf("post-run view = %+v", view)
	}

	lr, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeJSON[api.SessionListV1](t, lr.Body)
	lr.Body.Close()
	if len(list.Sessions) != 1 || list.Sessions[0].ID != sess.ID {
		t.Errorf("list = %+v", list)
	}

	mr, err := http.Get(ts.URL + "/v1/campaigns/" + sess.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	sessSnap := decodeJSON[struct {
		Counters map[string]int64 `json:"counters"`
	}](t, mr.Body)
	mr.Body.Close()
	if sessSnap.Counters["campaign.blocks_measured"] == 0 {
		t.Errorf("session metrics missing campaign counters: %v", sessSnap.Counters)
	}

	c := counters(t, ts)
	for _, want := range []string{"serve.sessions_submitted", "serve.cache_misses", "serve.campaigns_completed", "serve.worlds_built", "serve.probes_total"} {
		if c[want] == 0 {
			t.Errorf("server counter %s = 0 after a completed run (%v)", want, c)
		}
	}
}

// TestSyncSubmit pins wait=true: one request, terminal session in the
// response, result immediately fetchable.
func TestSyncSubmit(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, sess := postCampaign(t, ts, submitBody(7, func(r *api.SubmitRequestV1) { r.Wait = true }))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync submit status = %s, want 200", resp.Status)
	}
	if sess.State != api.StateDone {
		t.Fatalf("sync submit returned non-terminal session: %+v", sess)
	}
	if b := waitResult(t, ts, sess.ID); len(b) == 0 {
		t.Error("empty result after sync run")
	}
}

// TestCacheHitDeterminism is the tentpole acceptance check: an identical
// resubmission — even spelled with different worker counts — is served
// from the cache with byte-identical result bytes and zero new probes.
func TestCacheHitDeterminism(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, first := postCampaign(t, ts, submitBody(7, nil))
	cold := waitResult(t, ts, first.ID)
	before := counters(t, ts)
	if before["serve.cache_hits"] != 0 || before["serve.cache_misses"] != 1 {
		t.Fatalf("cold-run counters: %v", before)
	}

	// Same campaign, different spelling: explicit worker counts differ
	// from the implicit defaults, but canonicalization (worker counts do
	// not change output — DESIGN.md §4d) lands on the same cache key.
	resp, hit := postCampaign(t, ts, submitBody(7, func(r *api.SubmitRequestV1) {
		r.Options = core.Options{Workers: 3, CensusWorkers: 2}
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit submit status = %s, want 200", resp.Status)
	}
	if !hit.CacheHit || hit.State != api.StateDone {
		t.Fatalf("resubmission missed the cache: %+v", hit)
	}
	warm := waitResult(t, ts, hit.ID)
	if !bytes.Equal(cold, warm) {
		t.Error("cache hit returned different bytes than the cold run")
	}

	after := counters(t, ts)
	if after["serve.cache_hits"] != 1 {
		t.Errorf("cache_hits = %d, want 1", after["serve.cache_hits"])
	}
	if after["serve.probes_total"] != before["serve.probes_total"] ||
		after["serve.pings_total"] != before["serve.pings_total"] {
		t.Errorf("cache hit sent probes: before %v after %v", before, after)
	}

	// A genuinely different campaign misses.
	_, miss := postCampaign(t, ts, submitBody(8, nil))
	if miss.CacheHit {
		t.Error("different seed hit the cache")
	}
	waitResult(t, ts, miss.ID)
	if c := counters(t, ts); c["serve.cache_misses"] != 2 {
		t.Errorf("cache_misses = %d, want 2", c["serve.cache_misses"])
	}
}

// TestSSEEvents subscribes to the progress stream of a campaign and
// reads it to the terminal "done" event: at least one progress event
// with monotonic done counts, then the session resource in done state.
func TestSSEEvents(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, sess := postCampaign(t, ts, submitBody(7, nil))

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + sess.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var progress []api.ProgressEventV1
	var final *api.SessionV1
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var ev api.ProgressEventV1
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad progress payload %q: %v", data, err)
				}
				progress = append(progress, ev)
			case "done":
				var v api.SessionV1
				if err := json.Unmarshal([]byte(data), &v); err != nil {
					t.Fatalf("bad done payload %q: %v", data, err)
				}
				final = &v
			}
		}
		if final != nil {
			break
		}
	}
	if final == nil {
		t.Fatalf("stream ended without a done event (scanner err %v)", sc.Err())
	}
	if final.State != api.StateDone {
		t.Errorf("done event state = %s", final.State)
	}
	if len(progress) == 0 {
		t.Fatal("no progress events before done")
	}
	for i := 1; i < len(progress); i++ {
		if progress[i].Stage == progress[i-1].Stage && progress[i].Done < progress[i-1].Done {
			t.Errorf("done counts regressed: %+v -> %+v", progress[i-1], progress[i])
		}
	}
}

// TestClientDisconnectAborts pins the wait-mode contract: the campaign
// runs on the request context, so a client that goes away cancels the
// run. The server's single campaign slot is held by the test, keeping
// the session deterministically queued until after the disconnect.
func TestClientDisconnectAborts(t *testing.T) {
	srv, ts := newTestServer(t, func(c *serverConfig) { c.MaxCampaigns = 1 })
	if err := srv.limiter.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.limiter.Release()

	body := submitBody(7, func(r *api.SubmitRequestV1) { r.Wait = true })
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/campaigns", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request succeeded despite disconnect: %s", resp.Status)
		}
		errc <- err
	}()

	// Wait until the session exists (the handler is parked on the
	// limiter), then hang up.
	var id string
	for i := 0; i < 200 && id == ""; i++ {
		resp, err := http.Get(ts.URL + "/v1/campaigns")
		if err != nil {
			t.Fatal(err)
		}
		list := decodeJSON[api.SessionListV1](t, resp.Body)
		resp.Body.Close()
		if len(list.Sessions) > 0 {
			id = list.Sessions[0].ID
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if id == "" {
		t.Fatal("session never appeared")
	}
	cancel()
	wg.Wait()
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v, want context cancellation", err)
	}

	// The session reaches cancelled without ever probing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		view := decodeJSON[api.SessionV1](t, resp.Body)
		resp.Body.Close()
		if view.State == api.StateCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %s after disconnect", view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c := counters(t, ts); c["serve.probes_total"] != 0 || c["serve.campaigns_cancelled"] != 1 {
		t.Errorf("post-abort counters: %v", c)
	}

	// The aborted run must not have poisoned the cache: the same
	// campaign resubmitted runs cold and completes.
	rr, redo := postCampaign(t, ts, submitBody(7, nil))
	rr.Body.Close()
	if redo.CacheHit {
		t.Error("cancelled run left a cache entry")
	}
}

// TestCancelEndpoint pins DELETE: a queued session (slot held by the
// test) cancels without running.
func TestCancelEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, func(c *serverConfig) { c.MaxCampaigns = 1 })
	if err := srv.limiter.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.limiter.Release()

	_, sess := postCampaign(t, ts, submitBody(7, nil))
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+sess.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	rr, err := http.Get(ts.URL + "/v1/campaigns/" + sess.ID + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled session: %s, want 409", rr.Status)
	}
	if code := errorCode(t, rr); code != api.CodeRunFailed {
		t.Errorf("code = %q, want %q", code, api.CodeRunFailed)
	}
}

// TestConcurrentSessionsShareWorld races N distinct campaigns over one
// world spec: the pool must build the world exactly once, and every
// session must complete. Run under -race, this is the daemon's central
// concurrency test.
func TestConcurrentSessionsShareWorld(t *testing.T) {
	const n = 6
	_, ts := newTestServer(t, nil)

	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			// Distinct min_active per submission: same world key, but a
			// different cache key, so every session truly runs.
			_, sess := postCampaign(t, ts, submitBody(7, func(r *api.SubmitRequestV1) {
				r.Options.MinActive = 2 + i%3
				r.Options.ValidatePairs = 100 * (i + 1)
			}))
			ids[i] = sess.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if len(waitResult(t, ts, id)) == 0 {
			t.Errorf("session %s returned empty result", id)
		}
	}
	c := counters(t, ts)
	if c["serve.worlds_built"] != 1 {
		t.Errorf("worlds_built = %d, want 1 (reused %d)", c["serve.worlds_built"], c["serve.worlds_reused"])
	}
	if c["serve.campaigns_completed"] != n {
		t.Errorf("campaigns_completed = %d, want %d", c["serve.campaigns_completed"], n)
	}
}

// TestSessionRetentionOverload pins the 429 path: when every retained
// session is still live, submissions are refused; once sessions finish,
// eviction makes room again.
func TestSessionRetentionOverload(t *testing.T) {
	srv, ts := newTestServer(t, func(c *serverConfig) {
		c.MaxSessions = 2
		c.MaxCampaigns = 1
	})
	if err := srv.limiter.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	r1, _ := postCampaign(t, ts, submitBody(1, nil))
	r2, _ := postCampaign(t, ts, submitBody(2, nil))
	r1.Body.Close()
	r2.Body.Close()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", submitBody(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit = %s, want 429", resp.Status)
	}
	if code := errorCode(t, resp); code != api.CodeOverloaded {
		t.Errorf("code = %q, want %q", code, api.CodeOverloaded)
	}

	// Release the slot; both queued campaigns finish, and the next
	// submission evicts one of them.
	srv.limiter.Release()
	lr, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeJSON[api.SessionListV1](t, lr.Body)
	lr.Body.Close()
	for _, s := range list.Sessions {
		waitResult(t, ts, s.ID)
	}
	r4, _ := postCampaign(t, ts, submitBody(1, nil))
	r4.Body.Close()
}

// TestShutdownRefusesSubmissions pins the drain contract.
func TestShutdownRefusesSubmissions(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	srv.Close()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", submitBody(7, nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %s, want 503", resp.Status)
	}
	if code := errorCode(t, resp); code != api.CodeShuttingDown {
		t.Errorf("code = %q, want %q", code, api.CodeShuttingDown)
	}
}

// TestMonitorSession submits a monitoring campaign and checks the
// daemon's side of the contract: the summary grows a monitor section
// with one entry per epoch (bootstrap included), the session keys the
// result cache separately from its non-monitoring twin, the monitor's
// world is private (never the pool's), and the ceiling rejects
// oversized epoch counts.
func TestMonitorSession(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *serverConfig) { cfg.MaxMonitorEpochs = 4 })

	mkReq := func(epochs int) func(*api.SubmitRequestV1) {
		return func(r *api.SubmitRequestV1) {
			r.World.FaultPlan = "flap"
			r.Wait = true
			r.MonitorEpochs = epochs
		}
	}

	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", submitBody(11, mkReq(5)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("monitor_epochs above ceiling: got %s, want 400", resp.Status)
	}
	if code := errorCode(t, resp); code != api.CodeBadRequest {
		t.Fatalf("error code %q, want %q", code, api.CodeBadRequest)
	}

	_, sess := postCampaign(t, ts, submitBody(11, mkReq(2)))
	if sess.State != api.StateDone {
		t.Fatalf("monitor session state %q, want done", sess.State)
	}
	result := waitResult(t, ts, sess.ID)
	var sum api.RunSummaryV1
	if err := json.Unmarshal(result, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Monitor == nil || len(sum.Monitor.Epochs) != 3 {
		t.Fatalf("monitor section: %+v, want 3 epochs", sum.Monitor)
	}
	boot := sum.Monitor.Epochs[0]
	if !boot.All || boot.Reprobed != sum.Eligible {
		t.Fatalf("bootstrap epoch: %+v, want All with Reprobed == %d", boot, sum.Eligible)
	}
	for _, e := range sum.Monitor.Epochs[1:] {
		if e.All || e.Reprobed >= sum.Eligible {
			t.Errorf("epoch %d reprobed %d of %d eligible — not incremental", e.Epoch, e.Reprobed, sum.Eligible)
		}
	}

	// The plain campaign on the same world spec must miss the monitor's
	// cache entry and carry no monitor section.
	_, plain := postCampaign(t, ts, submitBody(11, func(r *api.SubmitRequestV1) {
		r.World.FaultPlan = "flap"
		r.Wait = true
	}))
	var plainSum api.RunSummaryV1
	if err := json.Unmarshal(waitResult(t, ts, plain.ID), &plainSum); err != nil {
		t.Fatal(err)
	}
	if plainSum.Monitor != nil {
		t.Error("non-monitoring campaign grew a monitor section")
	}

	// Resubmitting the monitor request is a cache hit with identical bytes.
	_, again := postCampaign(t, ts, submitBody(11, mkReq(2)))
	if !again.CacheHit {
		t.Error("identical monitor submission missed the result cache")
	}
	if got := waitResult(t, ts, again.ID); !bytes.Equal(got, result) {
		t.Error("cached monitor result bytes differ from the first run")
	}

	c := counters(t, ts)
	if c["serve.monitor_worlds_built"] == 0 {
		t.Error("monitor session did not build a private world")
	}
	if c["serve.monitor_epochs"] != 3 {
		t.Errorf("serve.monitor_epochs = %d, want 3", c["serve.monitor_epochs"])
	}
}
