// Command hobbitlint runs the repo's static-analysis suite (internal/lint)
// over the given package patterns and reports every violated determinism
// or concurrency invariant as "file:line: [analyzer] message".
//
// Usage:
//
//	hobbitlint [patterns...]       (default ./...)
//
// Patterns are directories relative to the module root; a trailing /...
// walks subdirectories (skipping testdata, like the go tool). Naming a
// testdata directory explicitly lints it, which is how the analyzer
// fixtures are exercised by hand:
//
//	go run ./cmd/hobbitlint ./internal/lint/testdata/src/randpkg
//
// Exit status: 0 clean, 1 findings reported, 2 operational failure.
// Findings are suppressed in place with //lint:ignore <analyzer> <reason>
// (see internal/lint's package documentation).
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/hobbitscan/hobbit/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "hobbitlint: %s: type error: %v\n", p.Path, terr)
		}
	}
	diags := lint.Run(loader, pkgs, lint.Suite())
	for _, d := range diags {
		fmt.Println(relativize(cwd, d))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// relativize renders the diagnostic with a cwd-relative path so output is
// clickable wherever the tool ran from.
func relativize(cwd string, d lint.Diagnostic) string {
	if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
		d.Pos.Filename = rel
	}
	return d.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hobbitlint:", err)
	os.Exit(2)
}
