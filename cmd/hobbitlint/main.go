// Command hobbitlint runs the repo's static-analysis suite (internal/lint)
// over the given package patterns and reports every violated determinism,
// concurrency, or wire-format invariant as "file:line: [analyzer] message".
//
// Usage:
//
//	hobbitlint [flags] [patterns...]       (default ./...)
//
//	-fix            apply suggested fixes (gofmt-clean), then report
//	                what remains
//	-format=github  emit GitHub Actions annotations instead of plain text
//	-write-compat   regenerate compat.lock for packages with versioned
//	                wire structs (the api-compat freeze; see DESIGN.md §4c)
//
// Patterns are directories relative to the module root; a trailing /...
// walks subdirectories (skipping testdata, like the go tool). Naming a
// testdata directory explicitly lints it, which is how the analyzer
// fixtures are exercised by hand:
//
//	go run ./cmd/hobbitlint ./internal/lint/testdata/src/randpkg
//
// Exit status: 0 clean, 1 findings reported, 2 operational failure.
// Findings are suppressed in place with //lint:ignore <analyzer> <reason>
// (see internal/lint's package documentation); a directive that
// suppresses nothing is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hobbitscan/hobbit/internal/lint"
)

func main() {
	fix := flag.Bool("fix", false, "apply suggested fixes in place (result is gofmt-formatted)")
	format := flag.String("format", "text", "output format: text or github (GitHub Actions annotations)")
	writeCompat := flag.Bool("write-compat", false, "regenerate compat.lock for packages declaring versioned wire structs")
	flag.Parse()
	if *format != "text" && *format != "github" {
		fatal(fmt.Errorf("unknown -format %q (want text or github)", *format))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "hobbitlint: %s: type error: %v\n", p.Path, terr)
		}
	}

	if *writeCompat {
		if err := writeCompatLocks(loader, pkgs); err != nil {
			fatal(err)
		}
		return
	}

	diags := lint.Run(loader, pkgs, lint.Suite())

	if *fix {
		diags, err = applyFixes(loader, pkgs, diags)
		if err != nil {
			fatal(err)
		}
	}

	for _, d := range diags {
		switch *format {
		case "github":
			fmt.Println(githubAnnotation(cwd, d))
		default:
			fmt.Println(relativize(cwd, d))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// applyFixes writes every suggested fix to disk and re-runs the suite so
// the caller sees only what still stands (a fix may also have unblocked
// or invalidated other findings' positions).
func applyFixes(loader *lint.Loader, pkgs []*lint.Package, diags []lint.Diagnostic) ([]lint.Diagnostic, error) {
	if lint.FixableCount(diags) == 0 {
		return diags, nil
	}
	fixed, err := lint.ApplyFixes(loader.Fset, diags)
	if err != nil {
		return nil, err
	}
	files := make([]string, 0, len(fixed))
	for file := range fixed {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		if err := os.WriteFile(file, fixed[file], 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "hobbitlint: fixed %s\n", file)
	}
	// Reload from the rewritten sources: positions in the old diags no
	// longer line up with the files on disk.
	fresh, err := lint.NewLoader(loader.ModuleRoot)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, p := range pkgs {
		dirs = append(dirs, p.Dir)
	}
	repkgs, err := fresh.Load(dirs...)
	if err != nil {
		return nil, err
	}
	return lint.Run(fresh, repkgs, lint.Suite()), nil
}

// writeCompatLocks regenerates the api-compat freeze file for every
// loaded package that declares versioned wire structs (or already has a
// lock, which an emptied package clears by deleting the file by hand —
// silent deletion would defeat the freeze).
func writeCompatLocks(loader *lint.Loader, pkgs []*lint.Package) error {
	wrote := 0
	for _, pkg := range pkgs {
		content := lint.CompatLock(loader.PassFor(pkg))
		if content == "" {
			continue
		}
		path := filepath.Join(pkg.Dir, lint.CompatLockFile)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hobbitlint: wrote %s\n", path)
		wrote++
	}
	if wrote == 0 {
		return fmt.Errorf("no loaded package declares versioned wire structs; nothing to freeze")
	}
	return nil
}

// relativize renders the diagnostic with a cwd-relative path so output is
// clickable wherever the tool ran from.
func relativize(cwd string, d lint.Diagnostic) string {
	if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
		d.Pos.Filename = rel
	}
	return d.String()
}

// githubAnnotation renders one finding in GitHub Actions workflow-command
// syntax, so a CI lint job surfaces findings as inline PR annotations.
func githubAnnotation(cwd string, d lint.Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
		file = rel
	}
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=hobbitlint %s::%s",
		ghEscapeProp(file), d.Pos.Line, d.Pos.Column,
		ghEscapeProp(d.Analyzer), ghEscapeData("["+d.Analyzer+"] "+d.Message))
}

// ghEscapeData escapes a workflow-command message payload.
func ghEscapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// ghEscapeProp escapes a workflow-command property value.
func ghEscapeProp(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hobbitlint:", err)
	os.Exit(2)
}
