package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/hobbitscan/hobbit/internal/blockmap"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	dump := filepath.Join(t.TempDir(), "map.txt")
	if err := run(context.Background(), runConfig{blocks: 500, scale: 0.02, seed: 7, dump: dump, top: 5}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	blocks, err := blockmap.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Error("dumped block map is empty")
	}
}

func TestRunSkipClustering(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	if err := run(context.Background(), runConfig{blocks: 300, scale: 0.02, seed: 7, workers: 2, skipClustering: true, top: 3}); err != nil {
		t.Fatal(err)
	}
}

// jsonSummary mirrors the -json output for shape assertions.
type jsonSummary struct {
	Universe  int            `json:"universe_blocks"`
	Eligible  int            `json:"eligible_blocks"`
	Pings     int64          `json:"pings"`
	Probes    int64          `json:"probes"`
	Classes   map[string]int `json:"classification"`
	Final     int            `json:"final_blocks"`
	Telemetry struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
		Stages []struct {
			Name       string  `json:"name"`
			DurationMS float64 `json:"duration_ms"`
		} `json:"stages"`
	} `json:"telemetry"`
}

func runJSON(t *testing.T, seed uint64) (jsonSummary, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), runConfig{
		blocks: 300, scale: 0.02, seed: seed, workers: 4, top: 3,
		json: true, stdout: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var s jsonSummary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, buf.String())
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	return s, raw
}

// TestRunJSONShape is the golden-style assertion on the -json summary:
// every top-level key the seed shipped plus the new telemetry section.
// TestRunOutputFile: -output streams per-/24 records during the run and
// closes the document with the run summary; the finished file is one
// well-formed JSON object (the nightly CI job asserts the same shape
// with jq), and the record stream covers every measured block.
func TestRunOutputFile(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	for _, streamChunk := range []int{0, 32} {
		path := filepath.Join(t.TempDir(), "out.json")
		if err := run(context.Background(), runConfig{
			blocks: 300, scale: 0.02, seed: 7, streamChunk: streamChunk,
			output: path, top: 3, stdout: io.Discard,
		}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Version int               `json:"version"`
			Blocks  []json.RawMessage `json:"blocks"`
			Summary jsonSummary       `json:"summary"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("chunk=%d: -output file is not valid JSON: %v", streamChunk, err)
		}
		if doc.Version != 1 {
			t.Errorf("chunk=%d: version = %d", streamChunk, doc.Version)
		}
		if len(doc.Blocks) == 0 || len(doc.Blocks) != doc.Summary.Eligible {
			t.Errorf("chunk=%d: %d block records, want one per eligible block (%d)",
				streamChunk, len(doc.Blocks), doc.Summary.Eligible)
		}
		if doc.Summary.Final == 0 || doc.Summary.Universe != 300 {
			t.Errorf("chunk=%d: implausible summary trailer: %+v", streamChunk, doc.Summary)
		}
		var rec struct {
			Block string `json:"block"`
			Class string `json:"class"`
		}
		if err := json.Unmarshal(doc.Blocks[0], &rec); err != nil || rec.Block == "" || rec.Class == "" {
			t.Errorf("chunk=%d: malformed first record %s (%v)", streamChunk, doc.Blocks[0], err)
		}
	}
}

// TestRunRejectsBadStreamChunk: the CLI surfaces core.ValidateStreamChunk
// before building the world.
func TestRunRejectsBadStreamChunk(t *testing.T) {
	for _, chunk := range []int{-1, 1<<20 + 1} {
		err := run(context.Background(), runConfig{blocks: 100, streamChunk: chunk, stdout: io.Discard})
		if err == nil || !strings.Contains(err.Error(), "stream chunk") {
			t.Errorf("streamChunk=%d: err = %v, want stream-chunk validation error", chunk, err)
		}
	}
}

func TestRunJSONShape(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	s, raw := runJSON(t, 7)
	for _, key := range []string{
		"universe_blocks", "eligible_blocks", "pings", "probes", "retries",
		"classification", "homogeneous_blocks", "measurable_blocks",
		"identical_set_aggregates", "mcl_clusters", "validated_clusters",
		"final_blocks", "telemetry",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("-json output missing key %q", key)
		}
	}
	if s.Universe != 300 || s.Eligible == 0 || s.Pings == 0 || s.Probes == 0 {
		t.Errorf("implausible summary: %+v", s)
	}

	// The telemetry section reports per-stage durations…
	stages := make(map[string]bool)
	for _, st := range s.Telemetry.Stages {
		stages[st.Name] = true
		if st.DurationMS < 0 {
			t.Errorf("stage %s has negative duration", st.Name)
		}
	}
	for _, want := range []string{"census", "measure", "aggregate", "cluster", "validate"} {
		if !stages[want] {
			t.Errorf("telemetry stages missing %q: %+v", want, s.Telemetry.Stages)
		}
	}
	// …and per-stage probe/ping counts consistent with the flat totals.
	c := s.Telemetry.Counters
	if c["probe.measure.probes"] == 0 || c["probe.measure.pings"] == 0 {
		t.Errorf("measure-stage probe counters empty: %v", c)
	}
	if got := c["probe.measure.probes"] + c["probe.validate.probes"]; got != s.Probes {
		t.Errorf("per-stage probes %d != total %d", got, s.Probes)
	}
	if got := c["probe.measure.pings"] + c["probe.validate.pings"]; got != s.Pings {
		t.Errorf("per-stage pings %d != total %d", got, s.Pings)
	}
	if c["campaign.blocks_measured"] != int64(s.Eligible) {
		t.Errorf("blocks_measured %d != eligible %d", c["campaign.blocks_measured"], s.Eligible)
	}
	if s.Telemetry.Histograms["campaign.probed_per_block"].Count != int64(s.Eligible) {
		t.Errorf("probed_per_block histogram = %+v", s.Telemetry.Histograms)
	}
}

// TestRunJSONDeterministic: two same-seed runs must agree on every counter
// (timings excluded) — telemetry doubles as a regression check on
// measurement load.
func TestRunJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	s1, _ := runJSON(t, 7)
	s2, _ := runJSON(t, 7)
	if !reflect.DeepEqual(s1.Telemetry.Counters, s2.Telemetry.Counters) {
		t.Errorf("same-seed counter snapshots differ:\n%v\n%v",
			s1.Telemetry.Counters, s2.Telemetry.Counters)
	}
	if s1.Pings != s2.Pings || s1.Probes != s2.Probes || s1.Final != s2.Final {
		t.Errorf("same-seed summaries differ: %+v vs %+v", s1, s2)
	}
	// And a different seed actually moves the load, so the check has
	// teeth.
	s3, _ := runJSON(t, 8)
	if reflect.DeepEqual(s1.Telemetry.Counters, s3.Telemetry.Counters) {
		t.Error("different seeds produced identical counter snapshots")
	}
}

// TestRunRejectsNegativeWorkers pins the flag-validation bugfix: a
// negative worker count used to fall through to the pools and silently
// behave like the auto value; now core.Options.Validate fails fast with
// the offending field named, before the world is even built.
func TestRunRejectsNegativeWorkers(t *testing.T) {
	cases := []struct {
		field string
		rc    runConfig
	}{
		{"workers", runConfig{blocks: 10, workers: -1}},
		{"census_workers", runConfig{blocks: 10, censusWorkers: -2}},
		{"cluster_workers", runConfig{blocks: 10, clusterWorkers: -8}},
	}
	for _, tc := range cases {
		err := run(context.Background(), tc.rc)
		if err == nil {
			t.Errorf("%s: negative value accepted", tc.field)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) || !strings.Contains(err.Error(), "GOMAXPROCS") {
			t.Errorf("%s: unhelpful error %q", tc.field, err)
		}
	}
	// Zero remains the documented auto value, not an error.
	if err := run(context.Background(), runConfig{blocks: 60, scale: 0.02, seed: 7, top: 1,
		skipClustering: true, stdout: io.Discard}); err != nil {
		t.Errorf("zero worker counts rejected: %v", err)
	}
}

// TestRunMetricsServerLifecycle pins the -metrics-addr bugfix: the
// listener binds synchronously (a bad address fails the run), serves the
// live snapshot while the pipeline executes, and is gone — gracefully
// shut down and joined — by the time run returns.
func TestRunMetricsServerLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	var addr string
	err := run(context.Background(), runConfig{
		blocks: 60, scale: 0.02, seed: 7, top: 1, skipClustering: true,
		stdout: io.Discard, metricsAddr: "127.0.0.1:0",
		metricsReady: func(a net.Addr) {
			addr = a.String()
			resp, err := http.Get("http://" + addr + "/")
			if err != nil {
				t.Errorf("metrics fetch during run: %v", err)
				return
			}
			defer resp.Body.Close()
			var snap map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
				t.Errorf("metrics snapshot not JSON: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("metricsReady hook never ran")
	}
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Error("metrics listener still accepting after run returned")
	}

	// And the synchronous bind: an unusable address is a startup error.
	if err := run(context.Background(), runConfig{blocks: 10, metricsAddr: "256.0.0.1:bad"}); err == nil {
		t.Error("bad -metrics-addr accepted")
	}
}

// TestRunUnknownFaultPlan pins the -fault-plan error path.
func TestRunUnknownFaultPlan(t *testing.T) {
	err := run(context.Background(), runConfig{blocks: 60, scale: 0.02, seed: 7,
		faultPlan: "meteor-strike", stdout: io.Discard})
	if err == nil || !strings.Contains(err.Error(), "meteor-strike") {
		t.Fatalf("unknown plan error = %v", err)
	}
}

// TestRunFaultPlanJSON smoke-runs a faulted campaign end to end through
// the CLI and checks the summary surfaces the plan and its fallout.
func TestRunFaultPlanJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	var buf bytes.Buffer
	err := run(context.Background(), runConfig{
		blocks: 300, scale: 0.02, seed: 7, workers: 4, top: 3,
		faultPlan: "rate-storm", json: true, stdout: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, buf.String())
	}
	if got := raw["fault_plan"]; got != "rate-storm" {
		t.Errorf("fault_plan = %v, want rate-storm", got)
	}
	if _, ok := raw["low_confidence_blocks"]; !ok {
		t.Error("low_confidence_blocks missing from summary")
	}
	tel := raw["telemetry"].(map[string]any)
	counters := tel["counters"].(map[string]any)
	if counters["campaign.degraded_blocks"] == nil || counters["campaign.degraded_blocks"].(float64) == 0 {
		t.Errorf("rate-storm run recorded no degraded blocks: %v", counters["campaign.degraded_blocks"])
	}
}

// TestRunMonitorEpochs drives the continuous-monitoring mode through
// the CLI: the -json summary grows a monitor section with one entry
// per epoch (bootstrap included), post-bootstrap epochs reprobe strict
// subsets, and the headline fields describe the final epoch.
func TestRunMonitorEpochs(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	var buf bytes.Buffer
	err := run(context.Background(), runConfig{
		blocks: 400, scale: 0.02, seed: 7, workers: 2, faultPlan: "flap",
		monitorEpochs: 2, top: 3, json: true, stdout: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Eligible int `json:"eligible_blocks"`
		Final    int `json:"final_blocks"`
		Monitor  *struct {
			Epochs []struct {
				Epoch    int  `json:"epoch"`
				All      bool `json:"all"`
				Reprobed int  `json:"reprobed_blocks"`
			} `json:"epochs"`
		} `json:"monitor"`
	}
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("parsing -json output: %v", err)
	}
	if sum.Monitor == nil || len(sum.Monitor.Epochs) != 3 {
		t.Fatalf("monitor section %+v, want 3 epochs", sum.Monitor)
	}
	if !sum.Monitor.Epochs[0].All || sum.Monitor.Epochs[0].Reprobed != sum.Eligible {
		t.Fatalf("bootstrap epoch %+v, want All with Reprobed == %d", sum.Monitor.Epochs[0], sum.Eligible)
	}
	for _, e := range sum.Monitor.Epochs[1:] {
		if e.All || e.Reprobed >= sum.Eligible {
			t.Errorf("epoch %d reprobed %d of %d — not incremental", e.Epoch, e.Reprobed, sum.Eligible)
		}
	}
}

func TestRunMonitorEpochsFlagErrors(t *testing.T) {
	if err := run(context.Background(), runConfig{blocks: 100, monitorEpochs: -1}); err == nil {
		t.Error("negative -monitor-epochs accepted")
	}
	err := run(context.Background(), runConfig{blocks: 100, monitorEpochs: 2, output: "x.json"})
	if err == nil || !strings.Contains(err.Error(), "-output") {
		t.Errorf("-output with -monitor-epochs: err = %v, want rejection", err)
	}
}
