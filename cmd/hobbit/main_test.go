package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/hobbitscan/hobbit/internal/blockmap"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	dump := filepath.Join(t.TempDir(), "map.txt")
	if err := run(runConfig{blocks: 500, scale: 0.02, seed: 7, dump: dump, top: 5}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	blocks, err := blockmap.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Error("dumped block map is empty")
	}
}

func TestRunSkipClustering(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	if err := run(runConfig{blocks: 300, scale: 0.02, seed: 7, workers: 2, skipClustering: true, top: 3}); err != nil {
		t.Fatal(err)
	}
}
