package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"github.com/hobbitscan/hobbit/internal/api"
	"github.com/hobbitscan/hobbit/internal/hobbit"
)

// blockRecord is one per-/24 measurement result as -output streams it:
// the verdict and the probe accounting, small enough that a million-block
// run writes records as fast as the campaign produces them.
type blockRecord struct {
	Block         string `json:"block"`
	Class         string `json:"class"`
	LastHops      int    `json:"last_hops"`
	Probed        int    `json:"probed"`
	Responded     int    `json:"responded"`
	Degraded      int    `json:"degraded,omitempty"`
	LowConfidence bool   `json:"low_confidence,omitempty"`
}

// resultWriter streams campaign results to a file as each becomes final,
// then closes the document with the run summary. The layout is one JSON
// object — {"version":1,"blocks":[...],"summary":{...}} — with every
// block record on its own line, so the finished file is plain JSON for jq
// while the growing file stays greppable line by line during the run.
// Records pass through a large buffered writer; nothing is retained per
// block, which is what lets the nightly million-block pipeline emit its
// full result set without holding a rendered report in memory.
type resultWriter struct {
	f  *os.File
	bw *bufio.Writer
	n  int
	// err latches the first write failure; sink becomes a no-op and the
	// error resurfaces from finish, so a full disk fails the run instead
	// of truncating it silently.
	err  error
	done bool
}

func newResultWriter(path string) (*resultWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &resultWriter{f: f, bw: bufio.NewWriterSize(f, 1<<20)}
	_, w.err = w.bw.WriteString("{\"version\":1,\"blocks\":[")
	return w, nil
}

// sink is the core.Pipeline.ResultSink callback: it runs on the
// collector goroutine, in campaign order, never concurrently.
func (w *resultWriter) sink(br *hobbit.BlockResult) {
	if w.err != nil {
		return
	}
	rec := blockRecord{
		Block:         br.Block.String(),
		Class:         br.Class.String(),
		LastHops:      len(br.LastHops),
		Probed:        br.Probed,
		Responded:     br.Responded,
		Degraded:      br.Degraded,
		LowConfidence: br.LowConfidence(),
	}
	b, err := json.Marshal(rec)
	if err != nil {
		w.err = err
		return
	}
	sep := byte('\n')
	if w.n > 0 {
		sep = ','
	}
	if w.err = w.bw.WriteByte(sep); w.err != nil {
		return
	}
	if w.n > 0 {
		if w.err = w.bw.WriteByte('\n'); w.err != nil {
			return
		}
	}
	if _, w.err = w.bw.Write(b); w.err != nil {
		return
	}
	w.n++
}

// finish closes the blocks array, appends the run summary, and flushes.
func (w *resultWriter) finish(sum api.RunSummaryV1) error {
	if w.err == nil {
		_, w.err = w.bw.WriteString("\n],\"summary\":")
	}
	if w.err == nil {
		b, err := json.Marshal(sum)
		if err == nil {
			_, err = w.bw.Write(b)
		}
		w.err = err
	}
	if w.err == nil {
		_, w.err = w.bw.WriteString("}\n")
	}
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	cerr := w.f.Close()
	w.done = true
	if w.err != nil {
		return fmt.Errorf("output: %w", w.err)
	}
	if cerr != nil {
		return fmt.Errorf("output: %w", cerr)
	}
	return nil
}

// abort closes the file on error paths that never reach finish, leaving
// the partial document on disk for inspection.
func (w *resultWriter) abort() {
	if w == nil || w.done {
		return
	}
	w.bw.Flush()
	w.f.Close()
	w.done = true
}
