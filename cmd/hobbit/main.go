// Command hobbit runs the full measurement pipeline over a synthetic
// Internet — census scan, per-/24 homogeneity classification,
// identical-set aggregation, MCL clustering with reprobe validation — and
// prints the resulting homogeneous block map, the artifact the paper
// publishes.
//
// Usage:
//
//	hobbit [-blocks N] [-scale F] [-seed S] [-workers W]
//	       [-census-workers W] [-cluster-workers W] [-stream-chunk N]
//	       [-skip-clustering] [-fault-plan NAME] [-dump FILE]
//	       [-output FILE] [-top N] [-json] [-progress]
//	       [-metrics-addr HOST:PORT]
//
// Every run is instrumented: -json emits the versioned api.RunSummaryV1
// (the same bytes hobbitd serves from /v1/campaigns/{id}/result) with a
// telemetry section (per-stage durations, per-stage probe counts,
// histograms), -progress streams live progress lines to stderr, and
// -metrics-addr serves the live registry snapshot as JSON over HTTP while
// the run executes. -output streams every per-/24 measurement result to a
// file as it becomes final — one JSON document, one record per line, run
// summary appended at the end — so million-block runs produce their full
// result set without holding a rendered report in memory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"strings"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/api"
	"github.com/hobbitscan/hobbit/internal/blockmap"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/faultplan"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/monitor"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

func main() {
	var (
		blocks   = flag.Int("blocks", 20000, "number of /24 blocks in the synthetic universe")
		scale    = flag.Float64("scale", 0.25, "scale factor for the planted Table-5 aggregates")
		seed     = flag.Uint64("seed", 0x40bb17, "world and measurement seed")
		workers  = flag.Int("workers", 0, "measurement workers (0 = GOMAXPROCS)")
		clWorker = flag.Int("cluster-workers", 0, "post-campaign stage workers: similarity graph, MCL, validation (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		cnWorker = flag.Int("census-workers", 0, "census sweep workers (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		stream   = flag.Int("stream-chunk", 0, "pipeline census, measurement, and aggregation over chunks of this many /24s (0 = materialized stages; output is identical either way)")
		skipCl   = flag.Bool("skip-clustering", false, "stop after identical-set aggregation")
		monEp    = flag.Int("monitor-epochs", 0, "after the initial run, advance the fault epoch this many times and re-measure incrementally (continuous-monitoring mode; the summary reports the final epoch)")
		plan     = flag.String("fault-plan", "", "inject a built-in fault plan into the synthetic world and enable adaptive probing (one of: "+strings.Join(faultplan.BuiltinNames(), ", ")+")")
		dump     = flag.String("dump", "", "write the final homogeneous block map to this file")
		output   = flag.String("output", "", "stream per-/24 measurement results to this file as JSON (records written as they become final, summary appended)")
		top      = flag.Int("top", 15, "number of largest blocks to characterize")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable run summary instead of tables")
		progress = flag.Bool("progress", false, "stream live measurement progress lines to stderr")
		metrics  = flag.String("metrics-addr", "", "serve the live telemetry snapshot as JSON on this address")
	)
	flag.Parse()

	if err := run(context.Background(), runConfig{
		blocks: *blocks, scale: *scale, seed: *seed, workers: *workers,
		clusterWorkers: *clWorker, censusWorkers: *cnWorker,
		streamChunk: *stream, skipClustering: *skipCl, faultPlan: *plan,
		monitorEpochs: *monEp,
		dump:          *dump, output: *output, top: *top, json: *jsonOut,
		progress: *progress, metricsAddr: *metrics,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "hobbit:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	blocks         int
	scale          float64
	seed           uint64
	workers        int
	clusterWorkers int
	censusWorkers  int
	streamChunk    int
	skipClustering bool
	faultPlan      string
	monitorEpochs  int
	dump           string
	output         string
	top            int
	json           bool
	progress       bool
	metricsAddr    string
	// stdout overrides the output stream (tests capture it; nil means
	// os.Stdout).
	stdout io.Writer
	// metricsReady, when set, receives the bound metrics listener address
	// before the pipeline starts (tests bind to :0 and need the port).
	metricsReady func(net.Addr)
}

// options assembles the serializable pipeline knobs from the flags. The
// fault plan implies adaptive probing, exactly as hobbitd normalizes it,
// so the CLI and daemon spell one request the same way.
func (rc runConfig) options() core.Options {
	opts := core.Options{
		Workers:        rc.workers,
		ClusterWorkers: rc.clusterWorkers,
		CensusWorkers:  rc.censusWorkers,
		SkipClustering: rc.skipClustering,
		ValidatePairs:  20000,
	}
	if rc.faultPlan != "" {
		opts.MDA.Adaptive = true
	}
	return opts
}

func run(ctx context.Context, rc runConfig) error {
	stdout := rc.stdout
	if stdout == nil {
		stdout = os.Stdout
	}
	// Negative worker counts used to flow straight into the worker pools,
	// where they silently behaved like the auto value instead of the
	// serial run the user probably wanted; core.Options.Validate rejects
	// them (and any other out-of-range knob) up front. Zero stays the
	// documented "use GOMAXPROCS" value.
	opts := rc.options()
	if err := opts.Validate(); err != nil {
		return err
	}
	if rc.monitorEpochs < 0 {
		return errors.New("-monitor-epochs must be >= 0")
	}
	if rc.monitorEpochs > 0 && rc.output != "" {
		// The monitor re-emits every per-/24 result each epoch; the
		// streamed result file is defined as one record per block.
		return errors.New("-output is not supported with -monitor-epochs")
	}
	// A bad -stream-chunk fails here, before the synthetic world is
	// built, with the same error Pipeline.Run would raise.
	if err := core.ValidateStreamChunk(rc.streamChunk); err != nil {
		return err
	}
	cfg := netsim.DefaultConfig(rc.blocks)
	cfg.BigBlockScale = rc.scale
	cfg.Seed = rc.seed

	start := time.Now()
	world, err := netsim.New(cfg)
	if err != nil {
		return err
	}
	if !rc.json {
		fmt.Fprintf(stdout, "world: %d /24 blocks, %d routers (built in %v)\n",
			len(world.Blocks()), world.NumRouters(), time.Since(start).Round(time.Millisecond))
	}

	reg := telemetry.NewRegistry()
	if rc.metricsAddr != "" {
		// Bind synchronously so a bad address fails the run instead of a
		// goroutine's log line, then give the server a real lifecycle:
		// the serve goroutine is joined on return, after a context-driven
		// graceful shutdown lets in-flight snapshot requests finish.
		ln, err := net.Listen("tcp", rc.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		msrv := &http.Server{Handler: reg}
		var mwg sync.WaitGroup
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			if err := msrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "hobbit: metrics server:", err)
			}
		}()
		defer func() {
			// The graceful drain must outlive ctx: by the time this defer
			// runs, the run context is typically already cancelled, and a
			// shutdown scoped to it would abort in-flight snapshot reads
			// instead of letting them finish.
			//lint:ignore ctx-propagation shutdown window must survive run-context cancellation
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := msrv.Shutdown(sctx); err != nil {
				_ = msrv.Close()
			}
			mwg.Wait()
		}()
		if rc.metricsReady != nil {
			rc.metricsReady(ln.Addr())
		}
	}

	if rc.faultPlan != "" {
		sched, err := faultplan.CompileBuiltin(rc.faultPlan, world)
		if err != nil {
			return err
		}
		world.SetFaults(sched)
		if !rc.json {
			fmt.Fprintf(stdout, "fault plan: %s (%d events); adaptive probing enabled\n",
				sched.Name(), len(sched.Events()))
		}
	}

	pnet := probe.Instrument(probe.NewSimNetwork(world), reg, core.StageMeasure)
	p := &core.Pipeline{
		Net:         pnet,
		Scanner:     world,
		Blocks:      world.Blocks(),
		Seed:        rc.seed,
		Options:     opts,
		StreamChunk: rc.streamChunk,
		Telemetry:   reg,
	}
	if rc.progress {
		p.Progress = telemetry.NewLineSink(os.Stderr, 100)
	}
	var rw *resultWriter
	if rc.output != "" {
		rw, err = newResultWriter(rc.output)
		if err != nil {
			return err
		}
		defer rw.abort()
		p.ResultSink = rw.sink
	}
	start = time.Now()
	var out *core.Output
	var monSum *api.MonitorSummaryV1
	if rc.monitorEpochs > 0 {
		mon := &monitor.Monitor{Pipeline: p, Source: &monitor.WorldSource{W: world}}
		defer mon.Close()
		reps, err := mon.Run(ctx, rc.monitorEpochs+1)
		if err != nil {
			return err
		}
		monSum = api.BuildMonitorSummaryV1(reps)
		out = reps[len(reps)-1].Output
		if !rc.json {
			printMonitorEpochs(stdout, reps)
		}
	} else {
		out, err = p.Run(ctx)
		if err != nil {
			return err
		}
	}
	if rw != nil {
		if err := rw.finish(api.BuildRunSummaryV1(len(world.Blocks()), rc.faultPlan, out, pnet, reg)); err != nil {
			return err
		}
		if !rc.json {
			fmt.Fprintf(stdout, "results streamed to %s (%d blocks)\n", rc.output, rw.n)
		}
	}
	if rc.json {
		sum := api.BuildRunSummaryV1(len(world.Blocks()), rc.faultPlan, out, pnet, reg)
		sum.Monitor = monSum
		return api.EncodeRunSummaryV1(stdout, sum)
	}
	fmt.Fprintf(stdout, "pipeline: %d eligible /24s measured in %v (%d pings, %d probes, %d retries)\n\n",
		len(out.Eligible), time.Since(start).Round(time.Millisecond), pnet.Pings(), pnet.Probes(),
		pnet.PingRetries()+pnet.ProbeRetries())

	// Table 1-style classification summary.
	sum := out.Campaign.Summary()
	fmt.Fprintln(stdout, "classification of measured /24 blocks:")
	for _, cls := range []hobbit.Class{
		hobbit.ClassTooFewActive, hobbit.ClassUnresponsiveLastHop,
		hobbit.ClassSameLastHop, hobbit.ClassNonHierarchical,
		hobbit.ClassHierarchical,
	} {
		fmt.Fprintf(stdout, "  %-28s %8d (%5.1f%%)\n", cls, sum.Counts[cls],
			100*float64(sum.Counts[cls])/float64(max(sum.Total, 1)))
	}
	fmt.Fprintf(stdout, "homogeneous: %d of %d measurable (%.1f%%)\n\n",
		sum.Homogeneous(), sum.Measurable(),
		100*float64(sum.Homogeneous())/float64(max(sum.Measurable(), 1)))

	fmt.Fprintf(stdout, "identical-set aggregation: %d homogeneous /24s -> %d blocks\n",
		sum.Homogeneous(), len(out.Aggregates))
	if rc.faultPlan != "" {
		fmt.Fprintf(stdout, "low-confidence /24s excluded from aggregation: %d\n", len(out.LowConfidence))
	}
	if out.Clustering != nil {
		validated := 0
		for _, c := range out.Clustering.Clusters {
			if out.Validated[c.ID] {
				validated++
			}
		}
		fmt.Fprintf(stdout, "clustering: %d clusters (inflation %.2f), %d validated by reprobing -> %d final blocks\n",
			len(out.Clustering.Clusters), out.Clustering.ChosenInflation, validated, len(out.Final))
	}

	fmt.Fprintln(stdout, "\nstage timings:")
	for _, s := range reg.Spans() {
		fmt.Fprintf(stdout, "  %-12s %8.0fms\n", s.Name, s.DurationMS)
	}

	fmt.Fprintf(stdout, "\ntop %d homogeneous blocks:\n", rc.top)
	fmt.Fprintf(stdout, "  %-5s %-6s %-22s %-18s %s\n", "rank", "#/24s", "organization", "geo-location", "type")
	for i, b := range aggregate.TopBySize(out.Final, rc.top) {
		info, _ := world.Geo().Lookup(b.Blocks24[0])
		loc := info.Country
		if city := world.Geo().City(b.Blocks24[0]); city != "" {
			loc += " (" + city + ")"
		}
		fmt.Fprintf(stdout, "  %-5d %-6d %-22s %-18s %s\n", i+1, b.Size(), info.Org, loc, info.Type)
	}

	if rc.dump != "" {
		if err := dumpBlocks(rc.dump, out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nblock map written to %s\n", rc.dump)
	}
	return nil
}

// printMonitorEpochs renders the monitoring session's per-epoch
// accounting as a table.
func printMonitorEpochs(w io.Writer, reps []*monitor.EpochReport) {
	fmt.Fprintf(w, "monitoring: %d epochs (epoch 0 bootstraps, later epochs reprobe only churned blocks)\n", len(reps))
	fmt.Fprintf(w, "  %-6s %-8s %-9s %-12s %-11s %s\n", "epoch", "changed", "reprobed", "comp-reused", "val-reused", "final")
	for _, r := range reps {
		final := 0
		if r.Output != nil {
			final = len(r.Output.Final)
		}
		fmt.Fprintf(w, "  %-6d %-8d %-9d %-12d %-11d %d\n",
			r.Epoch, r.Changed, r.Reprobed, r.Cluster.Reused, r.ValReused, final)
	}
	fmt.Fprintln(w)
}

// dumpBlocks writes the final block map in the blockmap text format.
func dumpBlocks(path string, out *core.Output) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return blockmap.Write(f, out.Final)
}
