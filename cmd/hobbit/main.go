// Command hobbit runs the full measurement pipeline over a synthetic
// Internet — census scan, per-/24 homogeneity classification,
// identical-set aggregation, MCL clustering with reprobe validation — and
// prints the resulting homogeneous block map, the artifact the paper
// publishes.
//
// Usage:
//
//	hobbit [-blocks N] [-scale F] [-seed S] [-workers W]
//	       [-census-workers W] [-cluster-workers W] [-skip-clustering]
//	       [-fault-plan NAME] [-dump FILE] [-top N] [-json] [-progress]
//	       [-metrics-addr HOST:PORT]
//
// Every run is instrumented: -json emits a machine-readable summary with
// a telemetry section (per-stage durations, per-stage probe counts,
// histograms), -progress streams live progress lines to stderr, and
// -metrics-addr serves the live registry snapshot as JSON over HTTP while
// the run executes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"strings"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/blockmap"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/faultplan"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

func main() {
	var (
		blocks   = flag.Int("blocks", 20000, "number of /24 blocks in the synthetic universe")
		scale    = flag.Float64("scale", 0.25, "scale factor for the planted Table-5 aggregates")
		seed     = flag.Uint64("seed", 0x40bb17, "world and measurement seed")
		workers  = flag.Int("workers", 0, "measurement workers (0 = GOMAXPROCS)")
		clWorker = flag.Int("cluster-workers", 0, "post-campaign stage workers: similarity graph, MCL, validation (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		cnWorker = flag.Int("census-workers", 0, "census sweep workers (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		skipCl   = flag.Bool("skip-clustering", false, "stop after identical-set aggregation")
		plan     = flag.String("fault-plan", "", "inject a built-in fault plan into the synthetic world and enable adaptive probing (one of: "+strings.Join(faultplan.BuiltinNames(), ", ")+")")
		dump     = flag.String("dump", "", "write the final homogeneous block map to this file")
		top      = flag.Int("top", 15, "number of largest blocks to characterize")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable run summary instead of tables")
		progress = flag.Bool("progress", false, "stream live measurement progress lines to stderr")
		metrics  = flag.String("metrics-addr", "", "serve the live telemetry snapshot as JSON on this address")
	)
	flag.Parse()

	if err := run(context.Background(), runConfig{
		blocks: *blocks, scale: *scale, seed: *seed, workers: *workers,
		clusterWorkers: *clWorker, censusWorkers: *cnWorker,
		skipClustering: *skipCl, faultPlan: *plan,
		dump: *dump, top: *top, json: *jsonOut,
		progress: *progress, metricsAddr: *metrics,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "hobbit:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	blocks         int
	scale          float64
	seed           uint64
	workers        int
	clusterWorkers int
	censusWorkers  int
	skipClustering bool
	faultPlan      string
	dump           string
	top            int
	json           bool
	progress       bool
	metricsAddr    string
	// stdout overrides the output stream (tests capture it; nil means
	// os.Stdout).
	stdout io.Writer
}

func run(ctx context.Context, rc runConfig) error {
	stdout := rc.stdout
	if stdout == nil {
		stdout = os.Stdout
	}
	// Negative worker counts used to flow straight into the worker pools,
	// where they silently behaved like the auto value instead of the
	// serial run the user probably wanted; reject them up front. Zero
	// stays the documented "use GOMAXPROCS" value.
	for _, f := range []struct {
		name  string
		value int
	}{
		{"-workers", rc.workers},
		{"-census-workers", rc.censusWorkers},
		{"-cluster-workers", rc.clusterWorkers},
	} {
		if f.value < 0 {
			return fmt.Errorf("%s must be >= 0 (0 = GOMAXPROCS), got %d", f.name, f.value)
		}
	}
	cfg := netsim.DefaultConfig(rc.blocks)
	cfg.BigBlockScale = rc.scale
	cfg.Seed = rc.seed

	start := time.Now()
	world, err := netsim.New(cfg)
	if err != nil {
		return err
	}
	if !rc.json {
		fmt.Fprintf(stdout, "world: %d /24 blocks, %d routers (built in %v)\n",
			len(world.Blocks()), world.NumRouters(), time.Since(start).Round(time.Millisecond))
	}

	reg := telemetry.NewRegistry()
	if rc.metricsAddr != "" {
		srv := &http.Server{Addr: rc.metricsAddr, Handler: reg}
		defer srv.Close()
		//lint:ignore bare-go metrics server lives for the whole process; srv.Close above unblocks it on return
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "hobbit: metrics server:", err)
			}
		}()
	}

	var mdaOpts probe.MDAOptions
	if rc.faultPlan != "" {
		sched, err := faultplan.CompileBuiltin(rc.faultPlan, world)
		if err != nil {
			return err
		}
		world.SetFaults(sched)
		mdaOpts.Adaptive = true
		if !rc.json {
			fmt.Fprintf(stdout, "fault plan: %s (%d events); adaptive probing enabled\n",
				sched.Name(), len(sched.Events()))
		}
	}

	net := probe.Instrument(probe.NewSimNetwork(world), reg, core.StageMeasure)
	p := &core.Pipeline{
		Net:            net,
		Scanner:        world,
		Blocks:         world.Blocks(),
		Seed:           rc.seed,
		Workers:        rc.workers,
		ClusterWorkers: rc.clusterWorkers,
		CensusWorkers:  rc.censusWorkers,
		MDAOpts:        mdaOpts,
		SkipClustering: rc.skipClustering,
		ValidatePairs:  20000,
		Telemetry:      reg,
	}
	if rc.progress {
		p.Progress = telemetry.NewLineSink(os.Stderr, 100)
	}
	start = time.Now()
	out, err := p.Run(ctx)
	if err != nil {
		return err
	}
	if rc.json {
		return writeJSON(stdout, rc, world, out, net, reg)
	}
	fmt.Fprintf(stdout, "pipeline: %d eligible /24s measured in %v (%d pings, %d probes, %d retries)\n\n",
		len(out.Eligible), time.Since(start).Round(time.Millisecond), net.Pings(), net.Probes(),
		net.PingRetries()+net.ProbeRetries())

	// Table 1-style classification summary.
	sum := out.Campaign.Summary()
	fmt.Fprintln(stdout, "classification of measured /24 blocks:")
	for _, cls := range []hobbit.Class{
		hobbit.ClassTooFewActive, hobbit.ClassUnresponsiveLastHop,
		hobbit.ClassSameLastHop, hobbit.ClassNonHierarchical,
		hobbit.ClassHierarchical,
	} {
		fmt.Fprintf(stdout, "  %-28s %8d (%5.1f%%)\n", cls, sum.Counts[cls],
			100*float64(sum.Counts[cls])/float64(max(sum.Total, 1)))
	}
	fmt.Fprintf(stdout, "homogeneous: %d of %d measurable (%.1f%%)\n\n",
		sum.Homogeneous(), sum.Measurable(),
		100*float64(sum.Homogeneous())/float64(max(sum.Measurable(), 1)))

	fmt.Fprintf(stdout, "identical-set aggregation: %d homogeneous /24s -> %d blocks\n",
		sum.Homogeneous(), len(out.Aggregates))
	if rc.faultPlan != "" {
		fmt.Fprintf(stdout, "low-confidence /24s excluded from aggregation: %d\n", len(out.LowConfidence))
	}
	if out.Clustering != nil {
		validated := 0
		for _, c := range out.Clustering.Clusters {
			if out.Validated[c.ID] {
				validated++
			}
		}
		fmt.Fprintf(stdout, "clustering: %d clusters (inflation %.2f), %d validated by reprobing -> %d final blocks\n",
			len(out.Clustering.Clusters), out.Clustering.ChosenInflation, validated, len(out.Final))
	}

	fmt.Fprintln(stdout, "\nstage timings:")
	for _, s := range reg.Spans() {
		fmt.Fprintf(stdout, "  %-12s %8.0fms\n", s.Name, s.DurationMS)
	}

	fmt.Fprintf(stdout, "\ntop %d homogeneous blocks:\n", rc.top)
	fmt.Fprintf(stdout, "  %-5s %-6s %-22s %-18s %s\n", "rank", "#/24s", "organization", "geo-location", "type")
	for i, b := range aggregate.TopBySize(out.Final, rc.top) {
		info, _ := world.Geo().Lookup(b.Blocks24[0])
		loc := info.Country
		if city := world.Geo().City(b.Blocks24[0]); city != "" {
			loc += " (" + city + ")"
		}
		fmt.Fprintf(stdout, "  %-5d %-6d %-22s %-18s %s\n", i+1, b.Size(), info.Org, loc, info.Type)
	}

	if rc.dump != "" {
		if err := dumpBlocks(rc.dump, out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nblock map written to %s\n", rc.dump)
	}
	return nil
}

// runSummary is the -json output shape.
type runSummary struct {
	Universe    int                `json:"universe_blocks"`
	Eligible    int                `json:"eligible_blocks"`
	Pings       int64              `json:"pings"`
	Probes      int64              `json:"probes"`
	Retries     int64              `json:"retries"`
	Classes     map[string]int     `json:"classification"`
	Homogeneous int                `json:"homogeneous_blocks"`
	Measurable  int                `json:"measurable_blocks"`
	Aggregates  int                `json:"identical_set_aggregates"`
	Clusters    int                `json:"mcl_clusters"`
	Validated   int                `json:"validated_clusters"`
	Final       int                `json:"final_blocks"`
	FaultPlan   string             `json:"fault_plan,omitempty"`
	LowConf     int                `json:"low_confidence_blocks"`
	Telemetry   telemetry.Snapshot `json:"telemetry"`
}

func writeJSON(w io.Writer, rc runConfig, world *netsim.World, out *core.Output, net *probe.Instrumented, reg *telemetry.Registry) error {
	sum := out.Campaign.Summary()
	s := runSummary{
		Universe:    len(world.Blocks()),
		Eligible:    len(out.Eligible),
		Pings:       net.Pings(),
		Probes:      net.Probes(),
		Retries:     net.PingRetries() + net.ProbeRetries(),
		Classes:     make(map[string]int),
		Homogeneous: sum.Homogeneous(),
		Measurable:  sum.Measurable(),
		Aggregates:  len(out.Aggregates),
		Final:       len(out.Final),
		FaultPlan:   rc.faultPlan,
		LowConf:     len(out.LowConfidence),
		Telemetry:   reg.Snapshot(),
	}
	for cls, n := range sum.Counts {
		s.Classes[cls.String()] = n
	}
	if out.Clustering != nil {
		s.Clusters = len(out.Clustering.Clusters)
		for _, ok := range out.Validated {
			if ok {
				s.Validated++
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// dumpBlocks writes the final block map in the blockmap text format.
func dumpBlocks(path string, out *core.Output) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return blockmap.Write(f, out.Final)
}
