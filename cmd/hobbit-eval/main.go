// Command hobbit-eval regenerates the paper's tables and figures over the
// synthetic substrate. Each experiment prints the same rows or series the
// paper reports, annotated with the published values for comparison.
//
// Usage:
//
//	hobbit-eval -list
//	hobbit-eval [-blocks N] [-scale F] [-seed S] -exp table1
//	hobbit-eval [-blocks N] [-scale F] [-seed S] -exp all
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"github.com/hobbitscan/hobbit/internal/eval"
)

func main() {
	var (
		blocks  = flag.Int("blocks", 8000, "number of /24 blocks in the synthetic universe")
		scale   = flag.Float64("scale", 0.08, "scale factor for the planted Table-5 aggregates")
		seed    = flag.Uint64("seed", 0x40bb17, "world and measurement seed")
		exp     = flag.String("exp", "all", "experiment ID to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		metrics = flag.String("metrics", "", "also write all experiment metrics as CSV to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range eval.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	lab, err := eval.NewLab(eval.LabConfig{
		NumBlocks:     *blocks,
		BigBlockScale: *scale,
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hobbit-eval:", err)
		os.Exit(1)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range eval.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	failed := false
	var reports []*eval.Report
	for _, id := range ids {
		start := time.Now()
		r, err := eval.Run(lab, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hobbit-eval: %s: %v\n", id, err)
			failed = true
			continue
		}
		r.WriteTo(os.Stdout)
		fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
		reports = append(reports, r)
	}
	if *metrics != "" {
		if err := writeMetricsCSV(*metrics, reports); err != nil {
			fmt.Fprintln(os.Stderr, "hobbit-eval:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeMetricsCSV emits every report's named metrics as
// experiment,metric,value rows for plotting or regression tracking.
func writeMetricsCSV(path string, reports []*eval.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"experiment", "metric", "value"}); err != nil {
		return err
	}
	for _, r := range reports {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := w.Write([]string{r.ID, k, strconv.FormatFloat(r.Metrics[k], 'g', -1, 64)}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
