// Scale benchmarks: the 100k-block census and pipelined campaign legs
// that BENCH_SCALE.json gates in CI (the bench-scale job; see ci.yml and
// cmd/benchdiff for the refresh procedure). Beyond ns/op and B/op these
// legs guard peak heap: the streaming census must hold chunks, not the
// universe, so a regression that re-materializes per-block state shows
// up here as a ceiling breach long before it shows up as an OOM at 1M
// blocks.
//
// Run with: go test -run xxx -bench '^BenchmarkScale$' -benchtime=1x -count=3 -benchmem .
package hobbit

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

// scaleBlocks is the universe size of the scale legs: large enough that
// materializing per-block intermediates would dominate memory, small
// enough for a per-PR CI job.
const scaleBlocks = 100_000

// Peak-heap ceilings, in bytes, for the scale legs — checked-in budgets
// the same way BENCH_SCALE.json pins wall clock. Measured peaks (world +
// streamed run) are ~50 MB for the census leg and ~120 MB for the full
// pipeline; the ~2.5x headroom absorbs GC timing and host variance,
// while a change that rematerializes per-block state (the census used to
// allocate millions of record pointers) blows through it immediately.
const (
	scaleCensusHeapCeiling   = 128 << 20
	scalePipelineHeapCeiling = 320 << 20
)

// scaleChunk is the stream chunk size used by both legs; at 100k blocks
// it keeps ~98 chunks in flight across the pipeline windows.
const scaleChunk = 1024

var (
	scaleOnce  sync.Once
	scaleWorld *netsim.World
	scaleErr   error
)

// scaleLab builds the shared 100k-block world once; benchmarks must not
// mutate it.
func scaleLab(b *testing.B) *netsim.World {
	b.Helper()
	scaleOnce.Do(func() {
		cfg := netsim.DefaultConfig(scaleBlocks)
		cfg.BigBlockScale = 0.05
		scaleWorld, scaleErr = netsim.New(cfg)
	})
	if scaleErr != nil {
		b.Fatal(scaleErr)
	}
	return scaleWorld
}

// heapPeak samples runtime.ReadMemStats on a short interval and tracks
// the maximum live heap observed, approximating the run's peak RSS.
// Sampling (rather than a post-run reading) is what catches transient
// materialization: a stage that briefly holds the whole universe and
// frees it again leaves no trace in the final heap size.
type heapPeak struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func trackHeapPeak() *heapPeak {
	h := &heapPeak{stop: make(chan struct{}), done: make(chan struct{})}
	h.sample()
	go func() {
		defer close(h.done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				h.sample()
			case <-h.stop:
				return
			}
		}
	}()
	return h
}

func (h *heapPeak) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	for {
		old := h.peak.Load()
		if m.HeapAlloc <= old || h.peak.CompareAndSwap(old, m.HeapAlloc) {
			return
		}
	}
}

// Stop ends sampling and returns the peak live heap in bytes.
func (h *heapPeak) Stop() uint64 {
	close(h.stop)
	<-h.done
	h.sample()
	return h.peak.Load()
}

// guardHeap reports the observed peak as a metric and fails the leg when
// it exceeds its checked-in ceiling.
func guardHeap(b *testing.B, peak, ceiling uint64) {
	b.Helper()
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
	if peak > ceiling {
		b.Fatalf("peak heap %d MB exceeds the checked-in ceiling %d MB",
			peak>>20, ceiling>>20)
	}
}

// BenchmarkScale exercises the streaming census and the fully pipelined
// census→campaign→aggregation run at 100k blocks. Output equivalence
// with the materialized path is pinned by TestStreamMatchesScanWith and
// TestPipelineStreamedIdentical; these legs pin the resource envelope.
func BenchmarkScale(b *testing.B) {
	w := scaleLab(b)
	blocks := w.Blocks()

	b.Run(fmt.Sprintf("census-%dk-blocks", scaleBlocks/1000), func(b *testing.B) {
		b.ReportAllocs()
		runtime.GC()
		hp := trackHeapPeak()
		b.ResetTimer()
		var actives int
		for i := 0; i < b.N; i++ {
			ds := zmap.Collect(zmap.Stream(context.Background(), w, blocks, zmap.StreamOptions{
				Workers:   8,
				ChunkSize: scaleChunk,
			}))
			actives = ds.TotalActive()
			if actives == 0 {
				b.Fatal("census found no responders")
			}
		}
		b.StopTimer()
		guardHeap(b, hp.Stop(), scaleCensusHeapCeiling)
		b.ReportMetric(float64(actives), "responders")
	})

	b.Run(fmt.Sprintf("pipeline-%dk-blocks", scaleBlocks/1000), func(b *testing.B) {
		b.ReportAllocs()
		runtime.GC()
		hp := trackHeapPeak()
		b.ResetTimer()
		var eligible, final int
		for i := 0; i < b.N; i++ {
			p := &core.Pipeline{
				Net:     probe.NewSimNetwork(w),
				Scanner: w,
				Blocks:  blocks,
				Seed:    7,
				Options: core.Options{
					Workers:        8,
					CensusWorkers:  8,
					SkipClustering: true,
				},
				StreamChunk: scaleChunk,
			}
			out, err := p.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			eligible, final = len(out.Eligible), len(out.Final)
			if eligible == 0 || final == 0 {
				b.Fatalf("pipeline produced %d eligible, %d final blocks", eligible, final)
			}
		}
		b.StopTimer()
		guardHeap(b, hp.Stop(), scalePipelineHeapCeiling)
		b.ReportMetric(float64(eligible), "eligible-blocks")
		b.ReportMetric(float64(final), "final-blocks")
	})
}
