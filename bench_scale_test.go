// Scale benchmarks: the 100k-block census, pipelined campaign,
// isolated clustering, and full streamed-pipeline legs that
// BENCH_SCALE.json gates in CI (the bench-scale job; see ci.yml and
// cmd/benchdiff for the refresh procedure). Beyond ns/op and B/op these
// legs guard peak heap: the streaming census must hold chunks, not the
// universe, and the streaming clusterer must hold component snapshots,
// not the pairwise graph, so a regression that re-materializes
// per-block state shows up here as a ceiling breach long before it
// shows up as an OOM at 1M blocks.
//
// Run with: go test -run xxx -bench '^BenchmarkScale$' -benchtime=1x -count=3 -benchmem .
package hobbit

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/cluster"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

// scaleBlocks is the universe size of the scale legs: large enough that
// materializing per-block intermediates would dominate memory, small
// enough for a per-PR CI job.
const scaleBlocks = 100_000

// Peak-heap ceilings, in bytes, for the scale legs — checked-in budgets
// the same way BENCH_SCALE.json pins wall clock. Measured peaks (world +
// streamed run): ~50 MB census, ~130 MB pipeline, ~230 MB isolated
// clustering (100k aggregates with per-component MCL snapshots in
// flight), ~145 MB full streamed run; the ~2.5x headroom absorbs GC
// timing and host variance, while a change that rematerializes
// per-block state (the census used to allocate millions of record
// pointers) blows through it immediately. The clustering legs guard the
// streaming clusterer the same way: the incremental graph plus
// sealed-component snapshots must stay a small multiple of the
// aggregate count, never quadratic in it.
const (
	scaleCensusHeapCeiling   = 128 << 20
	scalePipelineHeapCeiling = 320 << 20
	scaleClusterHeapCeiling  = 512 << 20
	scaleFullHeapCeiling     = 384 << 20
)

// scaleChunk is the stream chunk size used by both legs; at 100k blocks
// it keeps ~98 chunks in flight across the pipeline windows.
const scaleChunk = 1024

var (
	scaleOnce  sync.Once
	scaleWorld *netsim.World
	scaleErr   error
)

// scaleLab builds the shared 100k-block world once; benchmarks must not
// mutate it.
func scaleLab(b *testing.B) *netsim.World {
	b.Helper()
	scaleOnce.Do(func() {
		cfg := netsim.DefaultConfig(scaleBlocks)
		cfg.BigBlockScale = 0.05
		scaleWorld, scaleErr = netsim.New(cfg)
	})
	if scaleErr != nil {
		b.Fatal(scaleErr)
	}
	return scaleWorld
}

// heapPeak samples runtime.ReadMemStats on a short interval and tracks
// the maximum live heap observed, approximating the run's peak RSS.
// Sampling (rather than a post-run reading) is what catches transient
// materialization: a stage that briefly holds the whole universe and
// frees it again leaves no trace in the final heap size.
type heapPeak struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func trackHeapPeak() *heapPeak {
	h := &heapPeak{stop: make(chan struct{}), done: make(chan struct{})}
	h.sample()
	go func() {
		defer close(h.done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				h.sample()
			case <-h.stop:
				return
			}
		}
	}()
	return h
}

func (h *heapPeak) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	for {
		old := h.peak.Load()
		if m.HeapAlloc <= old || h.peak.CompareAndSwap(old, m.HeapAlloc) {
			return
		}
	}
}

// Stop ends sampling and returns the peak live heap in bytes.
func (h *heapPeak) Stop() uint64 {
	close(h.stop)
	<-h.done
	h.sample()
	return h.peak.Load()
}

// guardHeap reports the observed peak as a metric and fails the leg when
// it exceeds its checked-in ceiling.
func guardHeap(b *testing.B, peak, ceiling uint64) {
	b.Helper()
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
	if peak > ceiling {
		b.Fatalf("peak heap %d MB exceeds the checked-in ceiling %d MB",
			peak>>20, ceiling>>20)
	}
}

// BenchmarkScale exercises the streaming census and the fully pipelined
// census→campaign→aggregation run at 100k blocks. Output equivalence
// with the materialized path is pinned by TestStreamMatchesScanWith and
// TestPipelineStreamedIdentical; these legs pin the resource envelope.
func BenchmarkScale(b *testing.B) {
	w := scaleLab(b)
	blocks := w.Blocks()

	b.Run(fmt.Sprintf("census-%dk-blocks", scaleBlocks/1000), func(b *testing.B) {
		b.ReportAllocs()
		runtime.GC()
		hp := trackHeapPeak()
		b.ResetTimer()
		var actives int
		for i := 0; i < b.N; i++ {
			ds := zmap.Collect(zmap.Stream(context.Background(), w, blocks, zmap.StreamOptions{
				Workers:   8,
				ChunkSize: scaleChunk,
			}))
			actives = ds.TotalActive()
			if actives == 0 {
				b.Fatal("census found no responders")
			}
		}
		b.StopTimer()
		guardHeap(b, hp.Stop(), scaleCensusHeapCeiling)
		b.ReportMetric(float64(actives), "responders")
	})

	b.Run(fmt.Sprintf("pipeline-%dk-blocks", scaleBlocks/1000), func(b *testing.B) {
		b.ReportAllocs()
		runtime.GC()
		hp := trackHeapPeak()
		b.ResetTimer()
		var eligible, final int
		for i := 0; i < b.N; i++ {
			p := &core.Pipeline{
				Net:     probe.NewSimNetwork(w),
				Scanner: w,
				Blocks:  blocks,
				Seed:    7,
				Options: core.Options{
					Workers:        8,
					CensusWorkers:  8,
					SkipClustering: true,
				},
				StreamChunk: scaleChunk,
			}
			out, err := p.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			eligible, final = len(out.Eligible), len(out.Final)
			if eligible == 0 || final == 0 {
				b.Fatalf("pipeline produced %d eligible, %d final blocks", eligible, final)
			}
		}
		b.StopTimer()
		guardHeap(b, hp.Stop(), scalePipelineHeapCeiling)
		b.ReportMetric(float64(eligible), "eligible-blocks")
		b.ReportMetric(float64(final), "final-blocks")
	})

	b.Run(fmt.Sprintf("cluster-%dk-aggregates", scaleBlocks/1000), func(b *testing.B) {
		// The clustering stage in isolation at 100k aggregates: the
		// incremental graph build over the inverted index plus
		// per-component MCL at every sweep inflation. The input is the
		// similarity-graph shape the campaign produces — small families of
		// near-identical last-hop sets and a long singleton tail — fed
		// through Pipeline.Run, which streams Observe deltas exactly as
		// the core pipeline does.
		aggs := syntheticAggregates(scaleBlocks)
		b.ReportAllocs()
		runtime.GC()
		hp := trackHeapPeak()
		b.ResetTimer()
		var clusters int
		for i := 0; i < b.N; i++ {
			res := (&cluster.Pipeline{Seed: 7, Workers: 8}).Run(aggs)
			clusters = len(res.Clusters)
			if clusters == 0 {
				b.Fatal("clustering found no clusters")
			}
		}
		b.StopTimer()
		guardHeap(b, hp.Stop(), scaleClusterHeapCeiling)
		b.ReportMetric(float64(clusters), "clusters")
	})

	b.Run(fmt.Sprintf("full-%dk-blocks", scaleBlocks/1000), func(b *testing.B) {
		// The complete streamed pipeline — census, campaign, aggregation,
		// clustering, and bounded reprobe validation all overlapped — the
		// exact shape the nightly 1M job runs with -output.
		b.ReportAllocs()
		runtime.GC()
		hp := trackHeapPeak()
		b.ResetTimer()
		var clusters, final int
		for i := 0; i < b.N; i++ {
			p := &core.Pipeline{
				Net:     probe.NewSimNetwork(w),
				Scanner: w,
				Blocks:  blocks,
				Seed:    7,
				Options: core.Options{
					Workers:        8,
					CensusWorkers:  8,
					ClusterWorkers: 8,
					ValidatePairs:  200,
				},
				StreamChunk: scaleChunk,
			}
			out, err := p.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if out.Clustering == nil {
				b.Fatal("clustering did not run")
			}
			clusters, final = len(out.Clustering.Clusters), len(out.Final)
			if final == 0 {
				b.Fatal("pipeline produced no final blocks")
			}
		}
		b.StopTimer()
		guardHeap(b, hp.Stop(), scaleFullHeapCeiling)
		b.ReportMetric(float64(clusters), "clusters")
		b.ReportMetric(float64(final), "final-blocks")
	})
}

// syntheticAggregates builds n aggregate blocks shaped like a real
// campaign's output: 70% in families of 3-8 sharing most of a last-hop
// set (the clusterable mass), 30% singletons with unique sets (the
// unclustered tail). Deterministic in n.
func syntheticAggregates(n int) []*aggregate.Block {
	aggs := make([]*aggregate.Block, 0, n)
	hop := uint32(0x0a000000)
	base := uint32(0)
	for len(aggs) < n {
		r := uint32(len(aggs))*2654435761 + 12345
		if r%10 < 7 {
			// A family: k hops, members each missing one element.
			k := 3 + int(r%6)
			family := make([]iputil.Addr, k)
			for i := range family {
				family[i] = iputil.Addr(hop)
				hop++
			}
			members := 3 + int((r>>8)%6)
			for m := 0; m < members && len(aggs) < n; m++ {
				blk := &aggregate.Block{ID: len(aggs)}
				for i, h := range family {
					if i == m%k {
						continue
					}
					blk.LastHops = append(blk.LastHops, h)
				}
				blk.Blocks24 = append(blk.Blocks24, iputil.Block24(base))
				base += 4
				aggs = append(aggs, blk)
			}
		} else {
			blk := &aggregate.Block{ID: len(aggs)}
			blk.LastHops = []iputil.Addr{iputil.Addr(hop), iputil.Addr(hop + 1)}
			hop += 2
			blk.Blocks24 = append(blk.Blocks24, iputil.Block24(base))
			base += 4
			aggs = append(aggs, blk)
		}
	}
	return aggs
}
