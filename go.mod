module github.com/hobbitscan/hobbit

go 1.22
