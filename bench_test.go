// Package hobbit holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (one benchmark per experiment, see
// DESIGN.md's per-experiment index), micro-benchmarks of the measurement
// hot paths, and the ablation benchmarks of the design choices called out
// in DESIGN.md section 4.
//
// Run with: go test -bench=. -benchmem
package hobbit

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/cluster"
	"github.com/hobbitscan/hobbit/internal/confidence"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/eval"
	"github.com/hobbitscan/hobbit/internal/graph"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/mcl"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/parallel"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

var (
	benchOnce sync.Once
	benchLab  *eval.Lab
	benchErr  error
)

// lab returns the shared benchmark laboratory (world + cached pipeline).
func lab(b *testing.B) *eval.Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab, benchErr = eval.NewLab(eval.LabConfig{
			NumBlocks:     2500,
			BigBlockScale: 0.03,
		})
		if benchErr == nil {
			// Warm the pipeline and trace dataset outside any timer.
			if _, err := benchLab.Pipeline(); err != nil {
				benchErr = err
				return
			}
			_, benchErr = benchLab.TraceDataset()
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

// BenchmarkExperiments regenerates every registered table and figure; each
// sub-benchmark is one experiment ID from DESIGN.md's index.
func BenchmarkExperiments(b *testing.B) {
	l := lab(b)
	for _, e := range eval.Experiments() {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := e.Run(l)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 && testing.Verbose() {
					r.WriteTo(io.Discard)
				}
			}
		})
	}
}

// --- Substrate and measurement micro-benchmarks ---

func BenchmarkWorldBuild(b *testing.B) {
	cfg := netsim.DefaultConfig(20000)
	cfg.BigBlockScale = 0.1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbe(b *testing.B) {
	l := lab(b)
	dst := l.World.Blocks()[100].Addr(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Net.Probe(dst, 7, uint16(i&0xf), uint32(i))
	}
}

func BenchmarkMDA(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	dst := firstResponsive(b, l, out.Eligible)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := probe.MDA(l.Net, dst, probe.MDAOptions{})
		if !res.DestReached {
			b.Fatal("destination unreachable")
		}
	}
}

func BenchmarkFindLastHops(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	dst := firstResponsive(b, l, out.Eligible)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := probe.FindLastHops(l.Net, dst, probe.MDAOptions{})
		if !res.Responded {
			b.Fatal("destination unresponsive")
		}
	}
}

func firstResponsive(b *testing.B, l *eval.Lab, blocks []iputil.Block24) iputil.Addr {
	b.Helper()
	for _, blk := range blocks {
		for i := 1; i < 255; i++ {
			if a := blk.Addr(i); l.World.RespondsNow(a) {
				return a
			}
		}
	}
	b.Fatal("no responsive destination")
	return 0
}

// BenchmarkMeasureBlock measures one /24 end to end and reports the probe
// cost per block.
func BenchmarkMeasureBlock(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	counter := probe.NewCounter(l.Net)
	m := &hobbit.Measurer{Net: counter, Seed: 1}
	blocks := out.Eligible
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i%len(blocks)]
		m.MeasureBlock(blk, out.Dataset.ActivesBy26(blk))
	}
	b.ReportMetric(float64(counter.Probes())/float64(b.N), "probes/block")
}

// BenchmarkCensus sweeps 500 blocks through the ZMap census, serial
// against an 8-worker pool; the dataset is identical either way (see
// TestScanWorkersIdentical), so only the wall clock may differ.
func BenchmarkCensus(b *testing.B) {
	l := lab(b)
	blocks := l.World.Blocks()[:500]
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				zmap.ScanWith(l.World, blocks, zmap.ScanOptions{Workers: workers})
			}
		})
	}
}

func BenchmarkMCLCore(b *testing.B) {
	// A synthetic component shaped like the real similarity graphs:
	// several dense families bridged by weak edges.
	g := graph.New(240)
	for f := 0; f < 8; f++ {
		base := f * 30
		for i := 0; i < 30; i++ {
			for j := i + 1; j < 30; j++ {
				if (i+j)%3 == 0 {
					g.AddEdge(base+i, base+j, 0.8)
				}
			}
		}
		if f > 0 {
			g.AddEdge(base, base-30, 0.05)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := mcl.Cluster(g, mcl.Options{}); len(got) < 2 {
			b.Fatalf("clusters = %d", len(got))
		}
	}
}

// --- Parallel-stage benchmarks (regressed against BENCH_4.json) ---
//
// Each compares the serial path (workers-1) against an 8-worker pool over
// the same inputs; the outputs are byte-identical by contract (see
// DESIGN.md), so only the wall clock may differ. Speedups only show on
// multi-core hosts — GOMAXPROCS=1 runs both legs on one core.

// BenchmarkClusterGraph measures similarity-graph construction, the
// pairwise stage sharded per vertex.
func BenchmarkClusterGraph(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	if len(out.Aggregates) == 0 {
		b.Skip("no aggregates")
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := cluster.BuildGraphWorkers(out.Aggregates, workers)
				if g.Len() != len(out.Aggregates) {
					b.Fatal("graph size mismatch")
				}
			}
		})
	}
}

// BenchmarkMCLExpand measures MCL over a dense synthetic component large
// enough to engage the per-column sharding of the expand/inflate step.
func BenchmarkMCLExpand(b *testing.B) {
	// Several dense families bridged by weak edges, sized well past the
	// parallelism threshold (128 columns).
	const families, size = 8, 40
	g := graph.New(families * size)
	for f := 0; f < families; f++ {
		base := f * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if (i+j)%3 == 0 {
					g.AddEdge(base+i, base+j, 0.8)
				}
			}
		}
		if f > 0 {
			g.AddEdge(base, base-size, 0.05)
		}
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := mcl.Cluster(g, mcl.Options{Workers: workers}); len(got) < 2 {
					b.Fatalf("clusters = %d", len(got))
				}
			}
		})
	}
}

// benchReprober is the exhaustive Section 6.5 reprobe strategy, the same
// shape core.Pipeline uses during validation.
type benchReprober struct {
	m  *hobbit.Measurer
	ds *zmap.Dataset
}

func (r benchReprober) Reprobe(blk iputil.Block24) []iputil.Addr {
	return r.m.MeasureBlock(blk, r.ds.ActivesBy26(blk)).LastHops
}

// BenchmarkValidate measures cluster reprobe validation fanned out over
// the worker pool, merged in cluster-ID order.
func BenchmarkValidate(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	if out.Clustering == nil || len(out.Clustering.Clusters) == 0 {
		b.Skip("no clusters to validate")
	}
	clusters := out.Clustering.Clusters
	rp := benchReprober{
		m:  &hobbit.Measurer{Net: l.Net, Seed: l.Seed, Exhaustive: true},
		ds: out.Dataset,
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vals := make([]cluster.Validation, len(clusters))
				pool := parallel.Pool{Workers: workers}
				err := pool.ForEach(context.Background(), len(clusters), func(j int) {
					vals[j] = cluster.Validate(clusters[j], rp, 0, l.Seed)
				})
				if err != nil {
					b.Fatal(err)
				}
				checked := 0
				for _, v := range vals {
					checked += v.PairsChecked
				}
				if checked == 0 {
					b.Fatal("validation checked no pairs")
				}
			}
		})
	}
}

func BenchmarkAggregateIdentical(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	results := out.Campaign.HomogeneousBlocks()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		aggregate.Identical(results)
	}
}

// --- Ablations (DESIGN.md section 4) ---

// BenchmarkAblationTermination compares the default MDA-rule terminator
// with the empirical Figure-4 confidence table and with never terminating:
// the trade-off between probing cost and verdicts.
func BenchmarkAblationTermination(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	table, err := l.BuildConfidence(1500)
	if err != nil {
		b.Fatal(err)
	}
	blocks := out.Eligible
	cases := []struct {
		name string
		term hobbit.Terminator
	}{
		{name: "mda-rule", term: hobbit.MDATerminator{}},
		{name: "fig4-table", term: table},
		{name: "probe-all", term: neverEnough{}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			counter := probe.NewCounter(l.Net)
			m := &hobbit.Measurer{Net: counter, Term: c.term, Seed: 1}
			correct, judged := 0, 0
			for i := 0; i < b.N; i++ {
				blk := blocks[i%len(blocks)]
				br := m.MeasureBlock(blk, out.Dataset.ActivesBy26(blk))
				if br.Class.Analyzable() {
					judged++
					hom, _ := l.World.TrueHomogeneous(blk)
					if br.Class.Homogeneous() == hom {
						correct++
					}
				}
			}
			b.ReportMetric(float64(counter.Probes())/float64(b.N), "probes/block")
			if judged > 0 {
				b.ReportMetric(float64(correct)/float64(judged), "accuracy")
			}
		})
	}
}

// neverEnough makes Hobbit probe every active address.
type neverEnough struct{}

func (neverEnough) Enough(int, int) bool { return false }

// BenchmarkAblationOrder compares the Section 3.3 shuffled /26
// round-robin destination order against naive ascending-address probing
// over the planted heterogeneous blocks: covering the /26s early exposes
// splits with fewer probes.
func BenchmarkAblationOrder(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	var hetero []iputil.Block24
	for _, blk := range l.World.HeteroBlocks() {
		if out.Dataset.Eligible(blk, 4) {
			hetero = append(hetero, blk)
		}
	}
	if len(hetero) == 0 {
		b.Skip("no eligible heterogeneous blocks")
	}
	for _, c := range []struct {
		name       string
		sequential bool
	}{
		{name: "rr-26", sequential: false},
		{name: "sequential", sequential: true},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			counter := probe.NewCounter(l.Net)
			m := &hobbit.Measurer{Net: counter, Seed: 1, SequentialOrder: c.sequential}
			flagged, analyzable := 0, 0
			for i := 0; i < b.N; i++ {
				blk := hetero[i%len(hetero)]
				br := m.MeasureBlock(blk, out.Dataset.ActivesBy26(blk))
				if br.Class.Analyzable() {
					analyzable++
					if br.VeryLikelyHetero {
						flagged++
					}
				}
			}
			b.ReportMetric(float64(counter.Probes())/float64(b.N), "probes/block")
			if analyzable > 0 {
				b.ReportMetric(float64(flagged)/float64(analyzable), "flagged-hetero")
			}
		})
	}
}

// BenchmarkAblationMDAStop compares the published per-hop stopping table
// with a naive fixed probe count per hop.
func BenchmarkAblationMDAStop(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	dst := firstResponsive(b, l, out.Eligible)
	for _, c := range []struct {
		name     string
		maxFlows int
	}{
		{name: "stopping-table", maxFlows: 0}, // default: per-hop rule
		{name: "fixed-6", maxFlows: 6},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			paths := 0
			for i := 0; i < b.N; i++ {
				res := probe.MDA(l.Net, dst, probe.MDAOptions{MaxFlows: c.maxFlows})
				paths += res.Paths.Len()
			}
			b.ReportMetric(float64(paths)/float64(b.N), "paths/run")
		})
	}
}

// BenchmarkAblationMCLPreprocess compares running MCL per connected
// component (the paper's preprocessing) with running it on the whole
// graph at once — the cubic-cost motivation of Section 6.3.
func BenchmarkAblationMCLPreprocess(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	g := cluster.BuildGraph(out.Aggregates)
	b.Run("per-component", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			total := 0
			for _, comp := range g.Components() {
				if len(comp) < 2 {
					total++
					continue
				}
				sub, _ := g.Subgraph(comp)
				total += len(mcl.Cluster(sub, mcl.Options{}))
			}
			if total == 0 {
				b.Fatal("no clusters")
			}
		}
	})
	b.Run("whole-graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := mcl.Cluster(g, mcl.Options{}); len(got) == 0 {
				b.Fatal("no clusters")
			}
		}
	})
}

// BenchmarkAblationWildcard quantifies the Section 2.1 wildcard rule: the
// cost of route-set comparison with and without unresponsive-hop
// tolerance.
func BenchmarkAblationWildcard(b *testing.B) {
	l := lab(b)
	ds, err := l.TraceDataset()
	if err != nil {
		b.Fatal(err)
	}
	if len(ds.Blocks) < 2 {
		b.Skip("trace dataset too small")
	}
	s1 := ds.Blocks[0].Sets[0]
	s2 := ds.Blocks[1].Sets[0]
	for _, wildcard := range []bool{false, true} {
		name := "exact"
		if wildcard {
			name = "wildcard"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s1.SharesRoute(s2, wildcard)
			}
		})
	}
}

// BenchmarkConfidenceTable builds the Figure 4 table at increasing sample
// budgets.
func BenchmarkConfidenceTable(b *testing.B) {
	l := lab(b)
	ds, err := l.TraceDataset()
	if err != nil {
		b.Fatal(err)
	}
	var obs []confidence.BlockObservation
	for _, bt := range ds.Blocks {
		o := confidence.BlockObservation{Block: bt.Block}
		for lh, addrs := range bt.LastHopGroups() {
			cp := append([]iputil.Addr(nil), addrs...)
			iputil.SortAddrs(cp)
			o.Groups = append(o.Groups, hobbit.Group{LastHop: lh, Addrs: cp})
		}
		obs = append(obs, o)
	}
	for _, samples := range []int{200, 1000} {
		samples := samples
		b.Run(fmt.Sprintf("samples-%d", samples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				builder := confidence.Builder{Samples: samples, MaxProbed: 30, Seed: 9}
				if _, err := builder.Build(obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaign runs the full measurement campaign over a slice of the
// universe, the Table 1 workload.
func BenchmarkCampaign(b *testing.B) {
	l := lab(b)
	out, err := l.Pipeline()
	if err != nil {
		b.Fatal(err)
	}
	blocks := out.Eligible
	if len(blocks) > 300 {
		blocks = blocks[:300]
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			net := probe.Instrument(l.Net, nil, "measure")
			c := &hobbit.Campaign{
				Measurer: &hobbit.Measurer{Net: net, Seed: 1},
				Dataset:  out.Dataset,
				Workers:  workers,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Run(context.Background(), blocks)
				if err != nil {
					b.Fatal(err)
				}
				if res.Summary().Total != len(blocks) {
					b.Fatal("incomplete campaign")
				}
			}
			b.ReportMetric(float64(len(blocks)), "blocks/op")
			b.ReportMetric(float64(net.Probes())/float64(b.N)/float64(len(blocks)), "probes/block")
		})
	}
}

// BenchmarkPipelineStages runs the end-to-end pipeline with telemetry and
// reports the per-stage wall-clock split and probe load — the numbers
// every later performance PR regresses against.
func BenchmarkPipelineStages(b *testing.B) {
	cfg := netsim.DefaultConfig(1200)
	cfg.BigBlockScale = 0.02
	w, err := netsim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	stageNS := make(map[string]float64)
	var probes, pings, blocks float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := telemetry.NewRegistry()
		net := probe.Instrument(probe.NewSimNetwork(w), reg, core.StageMeasure)
		p := &core.Pipeline{
			Net:       net,
			Scanner:   w,
			Blocks:    w.Blocks(),
			Seed:      7,
			Telemetry: reg,
		}
		out, err := p.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range reg.Spans() {
			stageNS[s.Name] += s.DurationMS * float64(time.Millisecond)
		}
		probes += float64(net.Probes())
		pings += float64(net.Pings())
		blocks += float64(len(out.Eligible))
	}
	b.StopTimer()
	n := float64(b.N)
	for stage, ns := range stageNS {
		b.ReportMetric(ns/n/float64(time.Millisecond), stage+"-ms/op")
	}
	b.ReportMetric(probes/blocks, "probes/block")
	b.ReportMetric((probes+pings)/n, "packets/op")
}
