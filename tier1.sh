#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
# The -race leg covers the concurrent campaign workers writing into the
# shared telemetry registry.
set -ex

go vet ./...
go build ./...
go test ./...
go test -race ./internal/hobbit ./internal/telemetry
