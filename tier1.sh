#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
# - gofmt must report no files (output fails the gate);
# - go vet and the repo's own static-analysis suite (cmd/hobbitlint)
#   are hard gates: determinism, concurrency (goroutine-leak,
#   lock-discipline, ctx-propagation), and wire-format (api-compat vs
#   compat.lock) invariants are machine-checked, not review
#   conventions, and every //lint:ignore must still be earning its
#   keep (stale-suppression);
# - tests run exactly once, under -race: the race leg exercises a strict
#   superset of the plain run (campaign workers, the parallel
#   clustering/validation pools, and the telemetry registry all share
#   memory across goroutines), so a separate non-race leg would only
#   repeat the same assertions. -count=1 defeats the test cache so the
#   gate always executes, never replays; -shuffle=on randomizes test
#   order each run, so hidden inter-test state (a package-level cache
#   warmed by an earlier test, say) surfaces as a flake here instead of
#   an ordering accident that only breaks when someone adds a test —
#   the seed is printed on failure for reproduction with -shuffle=SEED;
# - the fault-injection layer and the accuracy harness carry a coverage
#   floor: they are the safety net that catches inference regressions in
#   everything else, so untested paths there silently weaken every other
#   gate. -short skips their multi-run determinism legs (already covered
#   by the -race run above), keeping the coverage pass cheap.
set -ex

test -z "$(gofmt -l . | tee /dev/stderr)"
go vet ./...
go build ./...
go run ./cmd/hobbitlint ./...
go test -race -count=1 -shuffle=on ./...

for pkg in ./internal/faultplan ./internal/harness ./internal/confidence ./internal/metadata; do
    cov=$(go test -short -count=1 -cover "$pkg" | tee /dev/stderr \
        | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    test -n "$cov"
    awk -v cov="$cov" -v floor=85 'BEGIN { exit !(cov + 0 >= floor) }'
done
