#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
# - gofmt must report no files (output fails the gate);
# - go vet and the repo's own static-analysis suite (cmd/hobbitlint)
#   are hard gates: determinism and concurrency invariants are
#   machine-checked, not review conventions;
# - tests run exactly once, under -race: the race leg exercises a strict
#   superset of the plain run (campaign workers, the parallel
#   clustering/validation pools, and the telemetry registry all share
#   memory across goroutines), so a separate non-race leg would only
#   repeat the same assertions. -count=1 defeats the test cache so the
#   gate always executes, never replays.
set -ex

test -z "$(gofmt -l . | tee /dev/stderr)"
go vet ./...
go build ./...
go run ./cmd/hobbitlint ./...
go test -race -count=1 ./...
