// DHCP host re-finding (the paper's third motivating implication):
// dynamic addressing moves hosts between measurements, and "knowing the
// addresses that are in the same homogeneous blocks as their (old)
// addresses can help this search". Hosts carry an application-layer
// fingerprint (an SSH host key, say); after a re-lease we search for each
// lost host near its old address and compare search strategies.
//
//	go run ./examples/dhcp-search
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
)

func main() {
	cfg := netsim.DefaultConfig(2000)
	cfg.BigBlockScale = 0.03
	world, err := netsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pipeline := &core.Pipeline{Net: probe.NewSimNetwork(world), Scanner: world, Blocks: world.Blocks(), Seed: 9}
	out, err := pipeline.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Index: /24 -> its final Hobbit block.
	blockOf := map[iputil.Block24]*aggregate.Block{}
	for _, agg := range out.Final {
		for _, b := range agg.Blocks24 {
			blockOf[b] = agg
		}
	}

	// Track hosts from multi-/24 blocks (where re-leasing can move them
	// to a different /24).
	type host struct {
		fp   netsim.Fingerprint
		addr iputil.Addr
	}
	var hosts []host
	for _, agg := range out.Final {
		if agg.Size() < 2 {
			continue
		}
		for _, b := range agg.Blocks24 {
			for _, a := range out.Dataset.Actives(b) {
				if fp, ok := world.HostFingerprint(a); ok {
					hosts = append(hosts, host{fp: fp, addr: a})
					break // one host per /24 keeps the sample spread
				}
			}
			if len(hosts) >= 200 {
				break
			}
		}
		if len(hosts) >= 200 {
			break
		}
	}
	fmt.Printf("tracking %d hosts by fingerprint at epoch 0\n", len(hosts))

	// The leases roll over.
	world.SetEpoch(1)

	probes := 0
	lookFor := func(fp netsim.Fingerprint, candidates []iputil.Addr) bool {
		for _, c := range candidates {
			probes++
			if got, ok := world.HostFingerprint(c); ok && got == fp {
				return true
			}
		}
		return false
	}
	block24Addrs := func(b iputil.Block24) []iputil.Addr {
		out := make([]iputil.Addr, 0, 256)
		for i := 0; i < 256; i++ {
			out = append(out, b.Addr(i))
		}
		return out
	}

	// Strategy A: rescan the host's old /24.
	// Strategy B: rescan its Hobbit block's /24s.
	foundSame24, found := 0, 0
	probesSame24, probesBlock := 0, 0
	for _, h := range hosts {
		probes = 0
		if lookFor(h.fp, block24Addrs(h.addr.Block24())) {
			foundSame24++
		}
		probesSame24 += probes

		probes = 0
		agg := blockOf[h.addr.Block24()]
		ok := false
		for _, b := range agg.Blocks24 {
			if lookFor(h.fp, block24Addrs(b)) {
				ok = true
				break
			}
		}
		if ok {
			found++
		}
		probesBlock += probes
	}

	n := len(hosts)
	fmt.Printf("\n%-32s %10s %14s\n", "search strategy", "recovered", "probes/host")
	fmt.Printf("%-32s %9.1f%% %14.0f\n", "rescan old /24",
		100*float64(foundSame24)/float64(n), float64(probesSame24)/float64(n))
	fmt.Printf("%-32s %9.1f%% %14.0f\n", "rescan Hobbit block",
		100*float64(found)/float64(n), float64(probesBlock)/float64(n))
	fmt.Println("\nhosts re-lease anywhere within their homogeneous block, so the old /24")
	fmt.Println("often comes up empty while the block-wide search recovers them.")
}
