// Stratified sampling from Hobbit blocks (the Section 7.3 / Figure 12 use
// case): drawing one address per homogeneous block yields a far more
// representative sample of host types than simple random sampling.
//
//	go run ./examples/stratified-sampling
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/metadata"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
)

func main() {
	cfg := netsim.DefaultConfig(2500)
	cfg.BigBlockScale = 0.06
	world, err := netsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pipeline := &core.Pipeline{Net: probe.NewSimNetwork(world), Scanner: world, Blocks: world.Blocks(), Seed: 5}
	out, err := pipeline.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Focus on the Time Warner population, whose documented rDNS naming
	// schemes identify host types.
	const twcASN = 11351
	var population []iputil.Addr
	strata := map[int][]iputil.Addr{}
	for _, agg := range out.Final {
		for _, b := range agg.Blocks24 {
			if info, ok := world.Geo().Lookup(b); !ok || info.ASN != twcASN {
				continue
			}
			for _, a := range out.Dataset.Actives(b) {
				population = append(population, a)
				strata[agg.ID] = append(strata[agg.ID], a)
			}
		}
	}
	countSchemes := func(addrs []iputil.Addr) int {
		seen := map[string]struct{}{}
		for _, a := range addrs {
			if name, ok := world.RDNSName(a); ok {
				seen[metadata.Scheme(name)] = struct{}{}
			}
		}
		return len(seen)
	}
	fmt.Printf("Time Warner population: %d addresses in %d Hobbit blocks, %d host-type schemes\n\n",
		len(population), len(strata), countSchemes(population))

	// Iterate strata in sorted-id order: the sequential rng below consumes
	// one draw per stratum, so map order would change which addresses are
	// sampled from run to run.
	ids := make([]int, 0, len(strata))
	for id := range strata {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	rng := rand.New(rand.NewSource(1))
	const reps = 25
	var stratSum, randSum float64
	n := len(strata)
	for r := 0; r < reps; r++ {
		var stratified []iputil.Addr
		for _, id := range ids {
			addrs := strata[id]
			stratified = append(stratified, addrs[rng.Intn(len(addrs))])
		}
		stratSum += float64(countSchemes(stratified))

		var random []iputil.Addr
		for i := 0; i < n; i++ {
			random = append(random, population[rng.Intn(len(population))])
		}
		randSum += float64(countSchemes(random))
	}
	fmt.Printf("sample size %d, mean over %d repetitions:\n", n, reps)
	fmt.Printf("  stratified (1 per Hobbit block): %5.1f schemes\n", stratSum/reps)
	fmt.Printf("  simple random:                   %5.1f schemes\n", randSum/reps)
	fmt.Printf("  advantage:                       %5.2fx\n", stratSum/randSum)
}
