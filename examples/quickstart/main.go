// Quickstart: build a small synthetic Internet, run the full Hobbit
// pipeline over it, and inspect the homogeneous block map.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

func main() {
	// 1. A laboratory Internet: 2,000 /24 blocks with planted ground
	// truth (aggregates, split blocks, load balancers).
	cfg := netsim.DefaultConfig(2000)
	cfg.BigBlockScale = 0.02
	world, err := netsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d /24s, %d router interfaces\n", len(world.Blocks()), world.NumRouters())

	// 2. The end-to-end pipeline: census -> Hobbit -> aggregation ->
	// clustering -> validation. A telemetry registry observes every
	// stage (spans, probe counters, progress); the context makes the
	// run cancellable.
	reg := telemetry.NewRegistry()
	pipeline := &core.Pipeline{
		Net:       probe.Instrument(probe.NewSimNetwork(world), reg, core.StageMeasure),
		Scanner:   world,
		Blocks:    world.Blocks(),
		Seed:      7,
		Telemetry: reg,
		Progress:  telemetry.NewLineSink(os.Stderr, 500),
	}
	out, err := pipeline.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	sum := out.Campaign.Summary()
	fmt.Printf("measured %d /24s: %d homogeneous, %d heterogeneous-looking\n",
		sum.Total, sum.Homogeneous(), sum.Counts[hobbit.ClassHierarchical])
	fmt.Printf("aggregated into %d blocks; clustering left %d final blocks\n",
		len(out.Aggregates), len(out.Final))

	// 3. Inspect a few multi-/24 homogeneous blocks: these are the
	// units a measurement system could probe instead of /24s.
	fmt.Println("\nsample homogeneous blocks larger than a /24:")
	shown := 0
	for _, b := range out.Final {
		if b.Size() < 2 {
			continue
		}
		info, _ := world.Geo().Lookup(b.Blocks24[0])
		fmt.Printf("  %d /24s starting at %v  (%s, %d last-hop routers)\n",
			b.Size(), b.Blocks24[0], info.Org, len(b.LastHops))
		if shown++; shown >= 5 {
			break
		}
	}

	// 4. Ground truth check, possible only in the laboratory: how many
	// final blocks are pure (all members truly co-located)?
	pure := 0
	for _, b := range out.Final {
		ids := map[int32]bool{}
		for _, blk := range b.Blocks24 {
			if id, ok := world.TrueAggregate(blk); ok {
				ids[id] = true
			}
		}
		if len(ids) == 1 {
			pure++
		}
	}
	fmt.Printf("\nground truth: %d of %d final blocks are pure\n", pure, len(out.Final))

	// 5. The run's load accounting: where the wall-clock went and how
	// many probes each stage cost.
	fmt.Println("\nstage timings and probe load:")
	snap := reg.Snapshot()
	for _, s := range snap.Stages {
		fmt.Printf("  %-10s %7.0fms\n", s.Name, s.DurationMS)
	}
	fmt.Printf("  measure: %d probes (%d retries), validate: %d probes\n",
		snap.Counters["probe.measure.probes"],
		snap.Counters["probe.measure.probe_retries"],
		snap.Counters["probe.validate.probes"])
}
