// IPv6 preview (the paper's first-named future work): Hobbit's hierarchy
// test carries over to IPv6 with /64 subnets in the /24's role and 64-bit
// interface identifiers in the host octet's. This example classifies
// synthetic /64s — one truly split into sub-allocations, one behind a
// per-destination load balancer — exactly the way Section 2.3 classifies
// /24s.
//
//	go run ./examples/ipv6-preview
package main

import (
	"fmt"
	"math/rand"

	"github.com/hobbitscan/hobbit/internal/ip6util"
)

func main() {
	rng := rand.New(rand.NewSource(64))

	// Case 1: a /64 whose IID space is genuinely split between two
	// customers at the 2^63 boundary — distinct route entries, so every
	// address below the boundary exits through r1 and every address
	// above through r2.
	split := []ip6util.Group{
		{LastHop: "2001:db8:ffff::1"},
		{LastHop: "2001:db8:ffff::2"},
	}
	for i := 0; i < 40; i++ {
		lo := rng.Uint64() >> 1 // below 2^63
		hi := lo | 1<<63        // above it
		split[0].IIDs = append(split[0].IIDs, lo)
		split[1].IIDs = append(split[1].IIDs, hi)
	}

	// Case 2: a homogeneous /64 behind a per-destination load balancer:
	// the last hop is a hash of the IID, so the groups interleave.
	balanced := []ip6util.Group{
		{LastHop: "2001:db8:eeee::1"},
		{LastHop: "2001:db8:eeee::2"},
	}
	for i := 0; i < 80; i++ {
		iid := rng.Uint64()
		balanced[iid%2].IIDs = append(balanced[iid%2].IIDs, iid)
	}

	verdict := func(groups []ip6util.Group) string {
		if ip6util.NonHierarchical(groups) {
			return "homogeneous (differences are load balancing)"
		}
		return "hierarchical (consistent with split allocations)"
	}
	fmt.Println("split /64:    ", verdict(split))
	fmt.Println("balanced /64: ", verdict(balanced))

	// The measurement-unit plumbing: subnet extraction and IIDs.
	probe := ip6util.MustParseAddr("2001:db8:1:2:a1b2:c3d4:e5f6:0789")
	fmt.Println("\nmeasurement unit of", probe, "is", ip6util.Subnet64(probe))
	fmt.Printf("its interface identifier: %#x\n", ip6util.IID(probe))
	fmt.Println("\nwhat does NOT carry over: census scanning — the sparse v6 space")
	fmt.Println("needs hitlists for destination selection; see ip6util's package docs.")
}
