// Cellular detection (the Section 5.2 / Figure 6 analysis): large
// homogeneous blocks owned by broadband ISPs are probed with ping trains;
// first-probe radio-promotion delay separates cellular gateways from
// datacenters, and rDNS patterns generalize the finding.
//
//	go run ./examples/cellular-detection
package main

import (
	"fmt"
	"log"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/metadata"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/rttmodel"
)

func main() {
	cfg := netsim.DefaultConfig(3000)
	cfg.BigBlockScale = 0.05
	world, err := netsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The planted Table-5 aggregates stand in for the blocks Hobbit's
	// aggregation would surface.
	pops := world.BigBlockPops()
	detCfg := rttmodel.DefaultDetectorConfig()

	fmt.Printf("%-14s %-14s %10s %12s %10s\n", "block", "org", "median(s)", "frac>0.5s", "verdict")
	for _, name := range []string{"tele2-a", "ocn-a", "verizon", "singtel", "softbank", "cox", "amazon-apne"} {
		ids := pops[name]
		if len(ids) == 0 {
			continue
		}
		blocks := world.AggregateBlocks(ids[0])
		var addrs []iputil.Addr
		for _, b := range blocks {
			for i := 1; i < 255 && len(addrs) < 300; i++ {
				if a := b.Addr(i); world.RespondsNow(a) {
					addrs = append(addrs, a)
				}
			}
		}
		info, _ := world.Geo().Lookup(blocks[0])
		v := rttmodel.Detect(world, addrs, detCfg)
		verdict := "datacenter/stable"
		if v.Cellular {
			verdict = "cellular"
		}
		fmt.Printf("%-14s %-14s %10.3f %11.1f%% %10s\n",
			name, info.Org, v.Diffs.Median(), 100*v.FractionAbove, verdict)
	}

	// Generalize via rDNS: the cellular blocks' naming patterns identify
	// cellular addresses elsewhere (Section 7.2).
	fmt.Println("\nrDNS pattern check on a cellular block:")
	tele2 := world.AggregateBlocks(pops["tele2-a"][0])
	matches, total := 0, 0
	for _, b := range tele2[:min(5, len(tele2))] {
		for i := 1; i < 255; i++ {
			if name, ok := world.RDNSName(b.Addr(i)); ok {
				total++
				if metadata.Tele2CellularPattern.MatchString(name) {
					matches++
				}
			}
		}
	}
	fmt.Printf("  %d/%d names match %q\n", matches, total, metadata.Tele2CellularPattern)

	// And the pattern must not fire on routers (the paper's negative
	// control).
	routerName, _ := world.RDNSName(iputil.MustParseAddr("100.64.0.5"))
	fmt.Printf("  router name %q matches: %v\n", routerName,
		metadata.Tele2CellularPattern.MatchString(routerName))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
