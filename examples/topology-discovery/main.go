// Topology discovery with Hobbit blocks (the Section 7.1 use case):
// choose traceroute destinations per homogeneous block instead of per /24
// and discover the same router links with far fewer probes.
//
//	go run ./examples/topology-discovery
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/trace"
)

func main() {
	cfg := netsim.DefaultConfig(3000)
	cfg.BigBlockScale = 0.04
	world, err := netsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := probe.NewSimNetwork(world)

	pipeline := &core.Pipeline{Net: net, Scanner: world, Blocks: world.Blocks(), Seed: 3}
	out, err := pipeline.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hobbit block map: %d blocks covering the measured space\n", len(out.Final))

	// Gather the reference link set: trace every responsive address of
	// 250 homogeneous /24s spread across the universe (consecutive /24s
	// share infrastructure, so an even spread keeps the sample fair).
	homog := out.Campaign.HomogeneousBlocks()
	var blocks []iputil.Block24
	step := len(homog) / 250
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(homog) && len(blocks) < 250; i += step {
		blocks = append(blocks, homog[i].Block)
	}
	allLinks := map[trace.Link]struct{}{}
	traces := map[iputil.Block24][]*trace.PathSet{}
	for _, b := range blocks {
		for _, a := range out.Dataset.Actives(b) {
			res := probe.MDA(net, a, probe.MDAOptions{})
			if !res.DestReached {
				continue
			}
			traces[b] = append(traces[b], res.Paths)
			for _, p := range res.Paths.Paths() {
				for _, ln := range p.Links() {
					allLinks[ln] = struct{}{}
				}
			}
		}
	}
	fmt.Printf("reference: %d /24s, %d distinct router links\n\n", len(blocks), len(allLinks))

	// Strategy A: one destination per /24. Strategy B: the same probe
	// budget spread over Hobbit blocks.
	blockOf := map[iputil.Block24]int{}
	for _, agg := range out.Final {
		for _, b := range agg.Blocks24 {
			blockOf[b] = agg.ID
		}
	}
	countLinks := func(sets []*trace.PathSet) int {
		seen := map[trace.Link]struct{}{}
		for _, s := range sets {
			for _, p := range s.Paths() {
				for _, ln := range p.Links() {
					seen[ln] = struct{}{}
				}
			}
		}
		return len(seen)
	}

	// Shuffle per-/24 and per-group destination lists so successive
	// rounds draw fresh destinations.
	rng := rand.New(rand.NewSource(2))
	groups := map[int][]*trace.PathSet{}
	for _, b := range blocks {
		rng.Shuffle(len(traces[b]), func(i, j int) {
			traces[b][i], traces[b][j] = traces[b][j], traces[b][i]
		})
		groups[blockOf[b]] = append(groups[blockOf[b]], traces[b]...)
	}
	// Group ids in sorted order: the shuffles and the round-robin draw
	// below must visit groups identically run to run.
	gids := make([]int, 0, len(groups))
	for id := range groups {
		gids = append(gids, id)
	}
	sort.Ints(gids)
	for _, id := range gids {
		sets := groups[id]
		rng.Shuffle(len(sets), func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })
	}

	fmt.Printf("%-18s %12s %14s\n", "dests per /24", "one per /24", "over blocks")
	for _, k := range []int{1, 2, 4} {
		var per24 []*trace.PathSet
		for _, b := range blocks {
			n := k
			if n > len(traces[b]) {
				n = len(traces[b])
			}
			per24 = append(per24, traces[b][:n]...)
		}
		var perHobbit []*trace.PathSet
		for round := 0; len(perHobbit) < len(per24); round++ {
			advanced := false
			for _, id := range gids {
				sets := groups[id]
				if round < len(sets) && len(perHobbit) < len(per24) {
					perHobbit = append(perHobbit, sets[round])
					advanced = true
				}
			}
			if !advanced {
				break
			}
		}
		a, b := countLinks(per24), countLinks(perHobbit)
		fmt.Printf("%-18d %11.0f%% %13.0f%%\n", k,
			100*float64(a)/float64(len(allLinks)), 100*float64(b)/float64(len(allLinks)))
	}
	fmt.Println("\nHobbit blocks tell the mapper which destinations are redundant.")
}
